package rules

import (
	"sort"
	"strings"
)

// Static analysis over declarative rules. The paper notes that UDF
// black-boxes defeat static analysis (Section 2.1) but that declarative
// rules admit it, and names "multiple data quality rule optimization" as
// future work (Section 8). This file implements the syntactic fragment:
// predicate normalization, DC implication, and a minimal cover that drops
// redundant DCs before planning — fewer pipelines, shared scans do the rest.

// normalizePred renders a predicate in a canonical form so syntactically
// different spellings compare equal: cross-tuple predicates are oriented
// with t1 on the left (flipping the operator as needed), and symmetric
// operators order their attribute pair lexicographically.
func normalizePred(p Pred) string {
	if p.RightIsConst {
		return "t" + itoa(p.LeftTuple) + "." + strings.ToLower(p.LeftAttr) + p.Op.String() + "#" + p.Const.Key()
	}
	lt, la, op, rt, ra := p.LeftTuple, strings.ToLower(p.LeftAttr), p.Op, p.RightTuple, strings.ToLower(p.RightAttr)
	// Orient t1 on the left, flipping the operator.
	if lt > rt {
		lt, la, rt, ra = rt, ra, lt, la
		op = op.Flip()
	}
	// Symmetric operators compare the same either way: order the attribute
	// pair so "t1.a = t2.b" and "t1.b = t2.a" normalize identically.
	if lt != rt && (op.String() == "=" || op.String() == "!=") && la > ra {
		la, ra = ra, la
	}
	return "t" + itoa(lt) + "." + la + op.String() + "t" + itoa(rt) + "." + ra
}

func itoa(i int) string {
	switch i {
	case 1:
		return "1"
	case 2:
		return "2"
	default:
		return "?"
	}
}

// predSet returns the normalized predicate set of a DC.
func predSet(dc *DC) map[string]bool {
	out := make(map[string]bool, len(dc.Preds))
	for _, p := range dc.Preds {
		out[normalizePred(p)] = true
	}
	return out
}

// Implies reports whether enforcing a entails b, by syntactic subsumption:
// a DC forbids the conjunction of its predicates, so if a's predicates are
// a subset of b's, every pair b forbids is already forbidden by a
// (¬(p) entails ¬(p ∧ q)). This is sound but not complete — completeness
// is NP-hard for general DCs.
func Implies(a, b *DC) bool {
	as, bs := predSet(a), predSet(b)
	if len(as) > len(bs) {
		return false
	}
	for p := range as {
		if !bs[p] {
			return false
		}
	}
	return true
}

// Equivalent reports whether the two DCs have identical normalized
// predicate sets.
func Equivalent(a, b *DC) bool { return Implies(a, b) && Implies(b, a) }

// MinimalCover removes DCs implied by another DC in the set (including
// exact duplicates), keeping the strongest rules. Among equivalent DCs the
// lexicographically smallest ID survives. The result preserves the
// violation semantics of the original set on every instance that satisfies
// the survivors.
func MinimalCover(dcs []*DC) []*DC {
	// Sort by (predicate count, ID) so stronger (fewer-predicate) DCs are
	// considered first and survive.
	order := append([]*DC(nil), dcs...)
	sort.SliceStable(order, func(i, j int) bool {
		if len(order[i].Preds) != len(order[j].Preds) {
			return len(order[i].Preds) < len(order[j].Preds)
		}
		return order[i].ID < order[j].ID
	})
	var kept []*DC
	for _, dc := range order {
		redundant := false
		for _, k := range kept {
			if Implies(k, dc) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, dc)
		}
	}
	return kept
}
