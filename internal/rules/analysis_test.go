package rules

import "testing"

func dc(t *testing.T, id, spec string) *DC {
	t.Helper()
	d, err := ParseDC(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestImpliesSubset(t *testing.T) {
	strong := dc(t, "s", "t1.city = t2.city")
	weak := dc(t, "w", "t1.city = t2.city & t1.st != t2.st")
	if !Implies(strong, weak) {
		t.Error("fewer predicates imply more")
	}
	if Implies(weak, strong) {
		t.Error("superset does not imply subset")
	}
}

func TestImpliesNormalizesSpelling(t *testing.T) {
	a := dc(t, "a", "t1.city = t2.city & t1.st != t2.st")
	b := dc(t, "b", "t2.city = t1.city & t2.st <> t1.st")
	if !Equivalent(a, b) {
		t.Error("reordered tuple variables and <>/!= should normalize equal")
	}
	c := dc(t, "c", "t1.salary > t2.salary")
	d := dc(t, "d", "t2.salary < t1.salary")
	if !Equivalent(c, d) {
		t.Error("flipped inequality should normalize equal")
	}
}

func TestImpliesDistinguishesConstants(t *testing.T) {
	a := dc(t, "a", "t1.city = 'NYC'")
	b := dc(t, "b", "t1.city = 'SF'")
	if Implies(a, b) || Implies(b, a) {
		t.Error("different constants are different predicates")
	}
	c := dc(t, "c", "t1.city = 'NYC'")
	if !Equivalent(a, c) {
		t.Error("same constant predicate should be equivalent")
	}
}

func TestImpliesDistinguishesOps(t *testing.T) {
	a := dc(t, "a", "t1.rate < t2.rate")
	b := dc(t, "b", "t1.rate <= t2.rate")
	if Implies(a, b) || Implies(b, a) {
		t.Error("< and <= are syntactically distinct (subsumption is syntactic)")
	}
}

func TestMinimalCover(t *testing.T) {
	d1 := dc(t, "d1", "t1.city = t2.city & t1.st != t2.st")
	d2 := dc(t, "d2", "t1.city = t2.city")                                         // implies d1
	d3 := dc(t, "d3", "t2.city = t1.city")                                         // duplicate of d2
	d4 := dc(t, "d4", "t1.salary > t2.salary & t1.rate < t2.rate")                 // independent
	d5 := dc(t, "d5", "t1.salary > t2.salary & t1.rate < t2.rate & t1.st = t2.st") // implied by d4

	cover := MinimalCover([]*DC{d1, d2, d3, d4, d5})
	ids := map[string]bool{}
	for _, d := range cover {
		ids[d.ID] = true
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 rules", ids)
	}
	if !ids["d2"] || !ids["d4"] {
		t.Errorf("cover should keep the strongest rules d2 and d4, got %v", ids)
	}
}

func TestMinimalCoverKeepsIndependents(t *testing.T) {
	d1 := dc(t, "d1", "t1.a = t2.a & t1.b != t2.b")
	d2 := dc(t, "d2", "t1.c = t2.c & t1.d != t2.d")
	cover := MinimalCover([]*DC{d1, d2})
	if len(cover) != 2 {
		t.Errorf("independent DCs must both survive, got %d", len(cover))
	}
}

func TestMinimalCoverEmpty(t *testing.T) {
	if got := MinimalCover(nil); len(got) != 0 {
		t.Errorf("empty cover = %v", got)
	}
}
