package rules

import (
	"fmt"
	"strings"

	"bigdansing/internal/core"
	"bigdansing/internal/model"
)

// Wildcard is the tableau symbol matching any value.
const Wildcard = "_"

// PatternRow is one row of a CFD pattern tableau: a pattern value (constant
// or Wildcard) per LHS attribute and per RHS attribute.
type PatternRow struct {
	LHS []string
	RHS []string
}

// CFD is a conditional functional dependency [11]: an embedded FD
// LHS -> RHS plus a pattern tableau restricting and refining where it
// applies. A row with wildcard RHS behaves like the FD on the tuples
// matching its LHS pattern; a row with constant RHS asserts the constant on
// every matching tuple.
type CFD struct {
	ID      string
	LHS     []string
	RHS     []string
	Tableau []PatternRow
}

// ParseCFD parses "zipcode -> city | 90210 => LA ; _ => _": the embedded FD
// before '|', then semicolon-separated tableau rows of comma-separated LHS
// patterns '=>' RHS patterns.
func ParseCFD(id, spec string) (*CFD, error) {
	fdPart, tabPart, ok := strings.Cut(spec, "|")
	if !ok {
		return nil, fmt.Errorf("rules: CFD %s: missing '|' tableau separator in %q", id, spec)
	}
	fd, err := ParseFD(id, fdPart)
	if err != nil {
		return nil, err
	}
	cfd := &CFD{ID: id, LHS: fd.LHS, RHS: fd.RHS}
	for _, rowRaw := range strings.Split(tabPart, ";") {
		rowRaw = strings.TrimSpace(rowRaw)
		if rowRaw == "" {
			continue
		}
		lhsRaw, rhsRaw, ok := strings.Cut(rowRaw, "=>")
		if !ok {
			return nil, fmt.Errorf("rules: CFD %s: tableau row %q missing '=>'", id, rowRaw)
		}
		row := PatternRow{LHS: splitPatterns(lhsRaw), RHS: splitPatterns(rhsRaw)}
		if len(row.LHS) != len(cfd.LHS) || len(row.RHS) != len(cfd.RHS) {
			return nil, fmt.Errorf("rules: CFD %s: tableau row %q arity mismatch (want %d=>%d)",
				id, rowRaw, len(cfd.LHS), len(cfd.RHS))
		}
		cfd.Tableau = append(cfd.Tableau, row)
	}
	if len(cfd.Tableau) == 0 {
		return nil, fmt.Errorf("rules: CFD %s: empty tableau", id)
	}
	return cfd, nil
}

func splitPatterns(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// matches reports whether the cell value matches a pattern entry.
func patternMatches(pat string, v model.Value) bool {
	return pat == Wildcard || pat == v.String()
}

// Compile translates the CFD into one or two rules:
//
//   - a unary rule checking every (row, RHS attribute) whose pattern is a
//     constant: a tuple matching the row's LHS pattern must carry the
//     constant (violations are single-tuple, exercising Detect's single-unit
//     granularity);
//   - a pair rule for rows with wildcard RHS entries: the embedded FD on
//     the tuples matching the row's LHS pattern, blocked on LHS like an FD.
func (cfd *CFD) Compile(schema *model.Schema) ([]*core.Rule, error) {
	lhsIdx, err := resolveAttrs(schema, cfd.LHS)
	if err != nil {
		return nil, fmt.Errorf("rules: CFD %s: %w", cfd.ID, err)
	}
	rhsIdx, err := resolveAttrs(schema, cfd.RHS)
	if err != nil {
		return nil, fmt.Errorf("rules: CFD %s: %w", cfd.ID, err)
	}
	rhsNames := make([]string, len(rhsIdx))
	for i, c := range rhsIdx {
		rhsNames[i] = schema.Name(c)
	}
	ruleID := cfd.ID

	matchLHS := func(row PatternRow, t model.Tuple) bool {
		for i, c := range lhsIdx {
			if !patternMatches(row.LHS[i], t.Cell(c)) {
				return false
			}
		}
		return true
	}

	var out []*core.Rule

	var constRows, varRows []PatternRow
	for _, row := range cfd.Tableau {
		hasConst, hasVar := false, false
		for _, p := range row.RHS {
			if p == Wildcard {
				hasVar = true
			} else {
				hasConst = true
			}
		}
		if hasConst {
			constRows = append(constRows, row)
		}
		if hasVar {
			varRows = append(varRows, row)
		}
	}

	if len(constRows) > 0 {
		rows := constRows
		out = append(out, &core.Rule{
			ID:    ruleID + "/const",
			Unary: true,
			Detect: func(it core.Item) []model.Violation {
				t := it.One()
				var vs []model.Violation
				for _, row := range rows {
					if !matchLHS(row, t) {
						continue
					}
					for i, pat := range row.RHS {
						if pat == Wildcard {
							continue
						}
						v := t.Cell(rhsIdx[i])
						if v.String() != pat {
							vs = append(vs, model.NewViolation(ruleID,
								model.NewCell(t.ID, rhsIdx[i], rhsNames[i], v)))
						}
					}
				}
				return vs
			},
			GenFix: func(v model.Violation) []model.Fix {
				// The constant the pattern demands: recompute by matching
				// the cell's attribute against the rows.
				var fixes []model.Fix
				c := v.Cells[0]
				for _, row := range rows {
					for i, pat := range row.RHS {
						if pat != Wildcard && rhsIdx[i] == c.Col {
							fixes = append(fixes, model.NewConstFix(c, model.OpEQ, model.S(pat)))
						}
					}
				}
				return fixes
			},
		})
	}

	if len(varRows) > 0 {
		rows := varRows
		out = append(out, &core.Rule{
			ID: ruleID + "/var",
			Block: func(t model.Tuple) model.Value {
				if len(lhsIdx) == 1 {
					return t.Cell(lhsIdx[0])
				}
				return compositeKey(t, lhsIdx)
			},
			Symmetric: true,
			Detect: func(it core.Item) []model.Violation {
				l, r := it.Left(), it.Right()
				var vs []model.Violation
				for _, row := range rows {
					if !matchLHS(row, l) || !matchLHS(row, r) {
						continue
					}
					for i, pat := range row.RHS {
						if pat != Wildcard {
							continue
						}
						lv, rv := l.Cell(rhsIdx[i]), r.Cell(rhsIdx[i])
						if !lv.Equal(rv) {
							vs = append(vs, model.NewViolation(ruleID,
								model.NewCell(l.ID, rhsIdx[i], rhsNames[i], lv),
								model.NewCell(r.ID, rhsIdx[i], rhsNames[i], rv)))
						}
					}
				}
				return vs
			},
			GenFix: func(v model.Violation) []model.Fix {
				if len(v.Cells) < 2 {
					return nil
				}
				return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
			},
		})
	}
	return out, nil
}
