package rules

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// bruteForceCFD implements CFD semantics directly over the relation: for
// every tableau row, every tuple matching the LHS pattern must carry the
// row's RHS constants, and every pair of LHS-equal matching tuples must
// agree on the row's wildcard RHS attributes. It returns the number of
// distinct violations under the same counting scheme the compiled rules
// use (one per offending cell for constants, one per offending pair and
// attribute for wildcards).
func bruteForceCFD(cfd *CFD, rel *model.Relation) int {
	schema := rel.Schema
	lhsIdx := make([]int, len(cfd.LHS))
	for i, a := range cfd.LHS {
		lhsIdx[i] = schema.MustIndex(a)
	}
	rhsIdx := make([]int, len(cfd.RHS))
	for i, a := range cfd.RHS {
		rhsIdx[i] = schema.MustIndex(a)
	}
	match := func(row PatternRow, t model.Tuple) bool {
		for i, c := range lhsIdx {
			if row.LHS[i] != Wildcard && row.LHS[i] != t.Cell(c).String() {
				return false
			}
		}
		return true
	}
	seen := map[string]bool{}
	for _, row := range cfd.Tableau {
		for _, t := range rel.Tuples {
			if !match(row, t) {
				continue
			}
			for i, pat := range row.RHS {
				if pat != Wildcard && t.Cell(rhsIdx[i]).String() != pat {
					seen[fmt.Sprintf("const|%d|%d", t.ID, rhsIdx[i])] = true
				}
			}
		}
		for a := 0; a < len(rel.Tuples); a++ {
			for b := a + 1; b < len(rel.Tuples); b++ {
				ta, tb := rel.Tuples[a], rel.Tuples[b]
				if !match(row, ta) || !match(row, tb) {
					continue
				}
				agree := true
				for _, c := range lhsIdx {
					if !ta.Cell(c).Equal(tb.Cell(c)) {
						agree = false
						break
					}
				}
				if !agree {
					continue
				}
				for i, pat := range row.RHS {
					if pat != Wildcard {
						continue
					}
					if !ta.Cell(rhsIdx[i]).Equal(tb.Cell(rhsIdx[i])) {
						lo, hi := ta.ID, tb.ID
						if lo > hi {
							lo, hi = hi, lo
						}
						seen[fmt.Sprintf("pair|%d|%d|%d", lo, hi, rhsIdx[i])] = true
					}
				}
			}
		}
	}
	return len(seen)
}

func TestCFDDetectionMatchesBruteForce(t *testing.T) {
	ctx := engine.New(4)
	schema := model.MustParseSchema("zip,city,state")
	f := func(seed int64, rowsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rel := model.NewRelation("r", schema)
		n := int(rowsRaw%40) + 2
		for i := 0; i < n; i++ {
			rel.Append(model.NewTuple(int64(i),
				model.S(fmt.Sprintf("z%d", r.Intn(4))),
				model.S(fmt.Sprintf("c%d", r.Intn(3))),
				model.S(fmt.Sprintf("s%d", r.Intn(3)))))
		}
		// A tableau mixing a constant row and a wildcard row.
		spec := fmt.Sprintf("zip -> city, state | z%d => c0, _ ; _ => _, _", r.Intn(4))
		cfd, err := ParseCFD("p", spec)
		if err != nil {
			return false
		}
		rs, err := cfd.Compile(schema)
		if err != nil {
			return false
		}
		res, err := core.DetectRules(ctx, rs, rel)
		if err != nil {
			return false
		}
		want := bruteForceCFD(cfd, rel)
		if len(res.Violations) != want {
			t.Logf("seed %d n %d spec %q: detected %d, brute force %d",
				seed, n, spec, len(res.Violations), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
