package rules

import (
	"fmt"
	"strconv"
	"strings"

	"bigdansing/internal/core"
	"bigdansing/internal/join"
	"bigdansing/internal/model"
)

// Pred is one predicate of a denial constraint, in the normal form
// t<LeftTuple>.LeftAttr Op (t<RightTuple>.RightAttr | Const).
type Pred struct {
	LeftTuple int // 1 or 2
	LeftAttr  string
	Op        model.Op
	// Right side: either another tuple's attribute or a constant.
	RightIsConst bool
	RightTuple   int
	RightAttr    string
	Const        model.Value
}

// CrossTuple reports whether the predicate relates the two tuples.
func (p Pred) CrossTuple() bool { return !p.RightIsConst && p.LeftTuple != p.RightTuple }

// String renders the predicate.
func (p Pred) String() string {
	if p.RightIsConst {
		return fmt.Sprintf("t%d.%s %s %q", p.LeftTuple, p.LeftAttr, p.Op, p.Const.String())
	}
	return fmt.Sprintf("t%d.%s %s t%d.%s", p.LeftTuple, p.LeftAttr, p.Op, p.RightTuple, p.RightAttr)
}

// DC is a denial constraint ∀t1,t2 ¬(p1 ∧ p2 ∧ ...): any pair satisfying
// every predicate is a violation. A DC whose predicates all reference t1 is
// unary (a single-tuple check).
type DC struct {
	ID    string
	Preds []Pred
}

// ParseDC parses the ASCII notation used throughout the paper's examples,
// e.g. "t1.salary > t2.salary & t1.rate < t2.rate" or
// "t1.city = t2.city & t1.st != t2.st" or constants:
// "t1.role = 'M' & t1.city != 'NYC'". Predicates are separated by '&'.
func ParseDC(id, spec string) (*DC, error) {
	dc := &DC{ID: id}
	for _, raw := range strings.Split(spec, "&") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		p, err := parsePred(raw)
		if err != nil {
			return nil, fmt.Errorf("rules: DC %s: %w", id, err)
		}
		dc.Preds = append(dc.Preds, p)
	}
	if len(dc.Preds) == 0 {
		return nil, fmt.Errorf("rules: DC %s: no predicates in %q", id, spec)
	}
	return dc, nil
}

// parsePred parses "t1.attr op rhs".
func parsePred(s string) (Pred, error) {
	// Find the operator: try two-char ops first.
	var op model.Op
	var opIdx, opLen int = -1, 0
	for _, cand := range []string{"!=", "<>", "<=", ">=", "==", "=", "<", ">"} {
		if i := strings.Index(s, cand); i >= 0 {
			parsed, err := model.ParseOp(cand)
			if err != nil {
				continue
			}
			op, opIdx, opLen = parsed, i, len(cand)
			break
		}
	}
	if opIdx < 0 {
		return Pred{}, fmt.Errorf("no operator in predicate %q", s)
	}
	left := strings.TrimSpace(s[:opIdx])
	right := strings.TrimSpace(s[opIdx+opLen:])

	lt, lattr, err := parseRef(left)
	if err != nil {
		return Pred{}, err
	}
	p := Pred{LeftTuple: lt, LeftAttr: lattr, Op: op}
	if rt, rattr, err := parseRef(right); err == nil {
		p.RightTuple, p.RightAttr = rt, rattr
		return p, nil
	}
	c, err := parseConst(right)
	if err != nil {
		return Pred{}, fmt.Errorf("right side %q is neither a tuple reference nor a constant", right)
	}
	p.RightIsConst = true
	p.Const = c
	return p, nil
}

// parseRef parses "t1.attr" / "t2.attr".
func parseRef(s string) (int, string, error) {
	tup, attr, ok := strings.Cut(s, ".")
	if !ok {
		return 0, "", fmt.Errorf("not a tuple reference: %q", s)
	}
	tup = strings.ToLower(strings.TrimSpace(tup))
	attr = strings.TrimSpace(attr)
	switch tup {
	case "t1":
		return 1, attr, nil
	case "t2":
		return 2, attr, nil
	default:
		return 0, "", fmt.Errorf("unknown tuple variable %q", tup)
	}
}

// parseConst parses 'str', "str", or a number.
func parseConst(s string) (model.Value, error) {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return model.S(s[1 : len(s)-1]), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return model.I(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return model.F(f), nil
	}
	return model.Value{}, fmt.Errorf("unparseable constant %q", s)
}

// String renders the DC.
func (dc *DC) String() string {
	parts := make([]string, len(dc.Preds))
	for i, p := range dc.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s: not(%s)", dc.ID, strings.Join(parts, " & "))
}

// Unary reports whether all predicates reference only t1.
func (dc *DC) Unary() bool {
	for _, p := range dc.Preds {
		if p.LeftTuple != 1 || (!p.RightIsConst && p.RightTuple != 1) {
			return false
		}
	}
	return true
}

// analyze classifies the predicates for enhancer selection.
type dcShape struct {
	eqJoins  []Pred // t1.A = t2.B
	ordering []Pred // t1.A op t2.B with op in {<,>,<=,>=}
	others   []Pred // cross-tuple != and anything else cross-tuple
	constant []Pred // single-tuple predicates (constants or same-tuple refs)
}

func (dc *DC) analyze() dcShape {
	var s dcShape
	for _, p := range dc.Preds {
		switch {
		case !p.CrossTuple():
			s.constant = append(s.constant, p)
		case p.Op == model.OpEQ:
			s.eqJoins = append(s.eqJoins, p)
		case p.Op.IsOrdering():
			s.ordering = append(s.ordering, p)
		default:
			s.others = append(s.others, p)
		}
	}
	return s
}

// Symmetric reports whether detection is order-insensitive: every
// cross-tuple predicate uses a symmetric operator (=, !=) on the same
// attribute of both tuples, and single-tuple predicates come in mirrored
// pairs (or reference t1 only in a unary DC).
func (dc *DC) Symmetric() bool {
	if dc.Unary() {
		return true
	}
	for _, p := range dc.Preds {
		if !p.CrossTuple() {
			return false // a one-sided constant predicate breaks symmetry
		}
		if p.Op != model.OpEQ && p.Op != model.OpNEQ {
			return false
		}
		if !strings.EqualFold(p.LeftAttr, p.RightAttr) {
			return false
		}
	}
	return true
}

// Compile translates the DC into a rule with the strongest applicable
// enhancer (Section 4.2):
//
//   - equality predicates become the blocking key (Block, or Block plus
//     BlockRight when the two sides key different attributes);
//   - otherwise, if every cross-tuple predicate is an ordering comparison,
//     they become OCJoin conditions;
//   - otherwise detection falls back to (U)CrossProduct.
//
// Detect evaluates the remaining predicates; GenFix emits one possible fix
// per predicate — its negation — following Section 2.2's example.
func (dc *DC) Compile(schema *model.Schema) (*core.Rule, error) {
	// Resolve all attributes up front.
	res := make([]resolvedPred, len(dc.Preds))
	for i, p := range dc.Preds {
		r := resolvedPred{p: p, rCol: -1}
		c, ok := schema.Index(p.LeftAttr)
		if !ok {
			return nil, fmt.Errorf("rules: DC %s: unknown attribute %q", dc.ID, p.LeftAttr)
		}
		r.lCol = c
		if !p.RightIsConst {
			c, ok := schema.Index(p.RightAttr)
			if !ok {
				return nil, fmt.Errorf("rules: DC %s: unknown attribute %q", dc.ID, p.RightAttr)
			}
			r.rCol = c
		}
		res[i] = r
	}
	byPred := make(map[string]resolvedPred, len(res))
	for _, r := range res {
		byPred[r.p.String()] = r
	}
	ruleID := dc.ID
	shape := dc.analyze()

	// evalPred evaluates a predicate against an ordered pair (a=t1, b=t2).
	evalPred := func(r resolvedPred, a, b model.Tuple) bool {
		lv := a.Cell(r.lCol)
		if r.p.LeftTuple == 2 {
			lv = b.Cell(r.lCol)
		}
		var rv model.Value
		switch {
		case r.p.RightIsConst:
			rv = r.p.Const
		case r.p.RightTuple == 2:
			rv = b.Cell(r.rCol)
		default:
			rv = a.Cell(r.rCol)
		}
		return r.p.Op.Eval(lv, rv)
	}

	// cellsOf collects the referenced cells of a violating pair. DCs touch
	// a handful of cells, so dedupe by linear scan instead of a map — this
	// runs once per violation and violations number in the millions.
	cellsOf := func(a, b model.Tuple) []model.Cell {
		cells := make([]model.Cell, 0, 2*len(res))
		addCell := func(t model.Tuple, col int) {
			for _, c := range cells {
				if c.TupleID == t.ID && c.Col == col {
					return
				}
			}
			cells = append(cells, model.NewCell(t.ID, col, schema.Name(col), t.Cell(col)))
		}
		for _, r := range res {
			if r.p.LeftTuple == 1 {
				addCell(a, r.lCol)
			} else {
				addCell(b, r.lCol)
			}
			if !r.p.RightIsConst {
				if r.p.RightTuple == 1 {
					addCell(a, r.rCol)
				} else {
					addCell(b, r.rCol)
				}
			}
		}
		return cells
	}

	if dc.Unary() {
		return &core.Rule{
			ID:    ruleID,
			Unary: true,
			Detect: func(it core.Item) []model.Violation {
				t := it.One()
				for _, r := range res {
					if !evalPred(r, t, t) {
						return nil
					}
				}
				return []model.Violation{model.NewViolation(ruleID, cellsOf(t, t)...)}
			},
			GenFix: func(v model.Violation) []model.Fix {
				return dcGenFix(schema, res, v)
			},
			Vec: dcUnaryVecForms(ruleID, res, cellsOf),
		}, nil
	}

	// detect evaluates the conjunction on the ordered pair it receives.
	// Symmetric DCs are fed unique unordered pairs (either orientation
	// finds the violation); asymmetric DCs are fed both orientations.
	detect := func(it core.Item) []model.Violation {
		a, b := it.Left(), it.Right()
		for _, r := range res {
			if !evalPred(r, a, b) {
				return nil
			}
		}
		return []model.Violation{model.NewViolation(ruleID, cellsOf(a, b)...)}
	}

	genFix := func(v model.Violation) []model.Fix {
		return dcGenFix(schema, res, v)
	}

	rule := &core.Rule{ID: ruleID, Detect: detect, GenFix: genFix, Symmetric: dc.Symmetric()}

	switch {
	case len(shape.eqJoins) > 0:
		// Block on the equality attributes. If both sides key the same
		// columns, one Block suffices; otherwise CoBlock.
		leftCols := make([]int, len(shape.eqJoins))
		rightCols := make([]int, len(shape.eqJoins))
		same := true
		for i, p := range shape.eqJoins {
			r := byPred[p.String()]
			lc, rc := r.lCol, r.rCol
			if p.LeftTuple == 2 { // normalize: left side keys t1
				lc, rc = rc, lc
			}
			leftCols[i], rightCols[i] = lc, rc
			if lc != rc {
				same = false
			}
		}
		keyOf := func(cols []int) core.BlockFunc {
			return func(t model.Tuple) model.Value {
				if len(cols) == 1 {
					return t.Cell(cols[0])
				}
				return compositeKey(t, cols)
			}
		}
		rule.Block = keyOf(leftCols)
		if !same {
			rule.BlockRight = keyOf(rightCols)
		} else {
			if len(leftCols) == 1 {
				rule.BlockAttr = schema.Name(leftCols[0])
			}
			// Same-key blocking is the shape the vectorized executor runs;
			// CoBlock (two-sided keys) stays on the tuple path.
			rule.Vec = dcPairVecForms(ruleID, res, leftCols, cellsOf)
		}
	case len(shape.ordering) > 0 && len(shape.others) == 0:
		conds := make([]join.Cond, 0, len(shape.ordering))
		for _, p := range shape.ordering {
			r := byPred[p.String()]
			lc, rc, op := r.lCol, r.rCol, p.Op
			if p.LeftTuple == 2 { // normalize to t1 on the left
				lc, rc, op = rc, lc, op.Flip()
			}
			conds = append(conds, join.Cond{LeftCol: lc, Op: op, RightCol: rc})
		}
		rule.OrderConds = conds
	default:
		// No enhancer applies; (U)CrossProduct via the Symmetric hint.
	}
	return rule, nil
}

// resolvedPred is a predicate with its attribute names resolved to column
// indexes of the rule's schema.
type resolvedPred struct {
	p          Pred
	lCol, rCol int
}

// dcUnaryVecForms builds a unary DC's vectorized Detect: each predicate
// scans the batch's column vectors and kills the rows that fail it
// (narrowing on a private selection copy, with an early exit once the batch
// is empty), so the common all-clean batch never materializes a tuple.
// Survivors — rows satisfying the whole conjunction — become violations in
// row order, exactly as the tuple path's single-unit enumeration emits them.
func dcUnaryVecForms(ruleID string, res []resolvedPred, cellsOf func(a, b model.Tuple) []model.Cell) *core.VecForms {
	// Declare the predicate columns so the executor materializes exactly the
	// vectors the kernel scans. The declaration must stay non-nil even for an
	// all-constant rule — nil means "materialize everything".
	scan := []int{}
	addScan := func(c int) {
		for _, k := range scan {
			if k == c {
				return
			}
		}
		scan = append(scan, c)
	}
	for _, r := range res {
		addScan(r.lCol)
		if !r.p.RightIsConst {
			addScan(r.rCol)
		}
	}
	return &core.VecForms{
		BlockCol: -1,
		ScanCols: scan,
		DetectBatch: func(b *model.Batch) []model.Violation {
			s := b.CloneSel()
			for _, r := range res {
				if s.LiveRows() == 0 {
					return nil
				}
				s.ForEachLive(func(row int) {
					lv := s.Value(row, r.lCol)
					rv := r.p.Const
					if !r.p.RightIsConst {
						rv = s.Value(row, r.rCol)
					}
					if !r.p.Op.Eval(lv, rv) {
						s.Kill(row)
					}
				})
			}
			if s.LiveRows() == 0 {
				return nil
			}
			out := make([]model.Violation, 0, s.LiveRows())
			s.ForEachLive(func(row int) {
				t := s.TupleAt(row)
				out = append(out, model.NewViolation(ruleID, cellsOf(t, t)...))
			})
			return out
		},
	}
}

// dcPairVecForms builds the vectorized Detect of a same-key blocked DC:
// per block, every column any predicate reads is gathered into a flat
// vector once, then pair enumeration evaluates the conjunction against the
// vectors and materializes cells only for violating pairs. Predicate
// semantics (t1 = us[i], t2 = us[j]) and enumeration order match the tuple
// detect fed by PairsUnique/PairsOrdered exactly.
func dcPairVecForms(ruleID string, res []resolvedPred, leftCols []int, cellsOf func(a, b model.Tuple) []model.Cell) *core.VecForms {
	// Map each predicate's columns onto a dense vector index.
	var usedCols []int
	colOf := make(map[int]int)
	addCol := func(c int) int {
		if i, ok := colOf[c]; ok {
			return i
		}
		colOf[c] = len(usedCols)
		usedCols = append(usedCols, c)
		return len(usedCols) - 1
	}
	type vecPred struct {
		r          resolvedPred
		lVec, rVec int // rVec is -1 for constant right sides
	}
	vps := make([]vecPred, len(res))
	for i, r := range res {
		vp := vecPred{r: r, lVec: addCol(r.lCol), rVec: -1}
		if !r.p.RightIsConst {
			vp.rVec = addCol(r.rCol)
		}
		vps[i] = vp
	}

	vec := &core.VecForms{BlockCol: -1}
	if len(leftCols) == 1 {
		vec.BlockCol = leftCols[0]
	}
	vec.DetectBlock = func(us []model.Tuple, ordered bool) []model.Violation {
		n := len(us)
		if n < 2 {
			return nil
		}
		buf := make([]model.Value, len(usedCols)*n) // one allocation for all vectors
		vecs := make([][]model.Value, len(usedCols))
		for x := range vecs {
			vecs[x] = buf[x*n : (x+1)*n]
		}
		for i, t := range us {
			for x, c := range usedCols {
				vecs[x][i] = t.Cell(c)
			}
		}
		var out []model.Violation
		emit := func(i, j int) {
			for _, vp := range vps {
				li := i
				if vp.r.p.LeftTuple == 2 {
					li = j
				}
				lv := vecs[vp.lVec][li]
				var rv model.Value
				switch {
				case vp.rVec < 0:
					rv = vp.r.p.Const
				case vp.r.p.RightTuple == 2:
					rv = vecs[vp.rVec][j]
				default:
					rv = vecs[vp.rVec][i]
				}
				if !vp.r.p.Op.Eval(lv, rv) {
					return
				}
			}
			out = append(out, model.NewViolation(ruleID, cellsOf(us[i], us[j])...))
		}
		if ordered {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if j != i {
						emit(i, j)
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					emit(i, j)
				}
			}
		}
		return out
	}
	return vec
}

// dcGenFix proposes, for each predicate, the update that negates it —
// expressed against the violation's captured cells.
func dcGenFix(schema *model.Schema, res []resolvedPred, v model.Violation) []model.Fix {
	// Index the violation's cells by (tupleOrdinal via order, col).
	// Violations from dc detection store cells in first-seen order; find a
	// cell by column and side by scanning.
	findCell := func(col int, nth int) (model.Cell, bool) {
		count := 0
		for _, c := range v.Cells {
			if c.Col == col {
				if count == nth {
					return c, true
				}
				count++
			}
		}
		return model.Cell{}, false
	}
	var fixes []model.Fix
	for _, r := range res {
		neg := r.p.Op.Negate()
		if r.p.RightIsConst {
			if c, ok := findCell(r.lCol, 0); ok {
				fixes = append(fixes, model.NewConstFix(c, neg, r.p.Const))
			}
			continue
		}
		// Cross-tuple: left cell is the first with lCol on t1's side.
		lc, lok := findCell(r.lCol, 0)
		nth := 0
		if r.rCol == r.lCol {
			nth = 1 // same attribute on both tuples: second occurrence
		}
		rc, rok := findCell(r.rCol, nth)
		if lok && rok {
			fixes = append(fixes, model.NewCellFix(lc, neg, rc))
		}
	}
	return fixes
}
