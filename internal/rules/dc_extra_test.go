package rules

import (
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// TestDCMixedEqualityOrderingConstant compiles the c2-style DC of
// Appendix E: equality join + constants + an ordering comparison. The
// equality predicate drives blocking; the rest evaluate in Detect.
func TestDCMixedEqualityOrderingConstant(t *testing.T) {
	s := model.MustParseSchema("gid:int,role,city,sal:float")
	rel := model.NewRelation("G", s)
	add := func(id int64, role, city string, sal float64) {
		rel.Append(model.NewTuple(id, model.I(id), model.S(role), model.S(city), model.F(sal)))
	}
	add(1, "M", "NYC", 100000)
	add(2, "M", "SF", 120000) // violates c2 with t1: same role, t1 in NYC, t2 not, t2 earns more
	add(3, "M", "SF", 90000)  // no violation: earns less than t1
	add(4, "E", "NYC", 50000)
	add(5, "E", "LA", 60000) // violates with t4

	dc, err := ParseDC("c2", "t1.role = t2.role & t1.city = 'NYC' & t2.city != 'NYC' & t2.sal > t1.sal")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := dc.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Block == nil {
		t.Fatal("equality predicate should enable blocking")
	}
	if rule.Symmetric {
		t.Error("constants break symmetry; ordered pairs required")
	}
	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %d, want 2: %v", len(res.Violations), res.Violations)
	}
	pairs := map[[2]int64]bool{}
	for _, v := range res.Violations {
		ids := v.TupleIDs()
		pairs[[2]int64{ids[0], ids[1]}] = true
	}
	if !pairs[[2]int64{1, 2}] || !pairs[[2]int64{4, 5}] {
		t.Errorf("pairs = %v, want {1,2} and {4,5}", pairs)
	}
	// GenFix negates each predicate: 4 possible fixes per violation.
	for _, fs := range res.FixSets {
		if len(fs.Fixes) != 4 {
			t.Errorf("fixes = %d, want 4 (one negation per predicate): %v", len(fs.Fixes), fs.Fixes)
		}
	}
}

// TestDCOrderingPlusNEQ compiles a DC whose cross-tuple predicates mix
// ordering with != — OCJoin does not apply (the != is not an ordering
// comparison), so the planner falls back to a cross product.
func TestDCOrderingPlusNEQ(t *testing.T) {
	s := model.MustParseSchema("a:float,b")
	dc, err := ParseDC("mix", "t1.a > t2.a & t1.b != t2.b")
	if err != nil {
		t.Fatal(err)
	}
	rule, err := dc.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rule.OrderConds) != 0 {
		t.Error("mixed ordering+NEQ must not claim OCJoin")
	}
	rel := model.NewRelation("r", s)
	rel.Append(
		model.NewTuple(1, model.F(2), model.S("x")),
		model.NewTuple(2, model.F(1), model.S("y")),
		model.NewTuple(3, model.F(1), model.S("x")),
	)
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	// (1,2): a 2>1 and b x!=y -> violation. (1,3): 2>1, x==x -> no.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d: %v", len(res.Violations), res.Violations)
	}
}

// TestCFDMultipleRHS checks a CFD whose embedded FD has two RHS attributes
// with per-attribute patterns.
func TestCFDMultipleRHS(t *testing.T) {
	s := model.MustParseSchema("zip:int,city,state")
	rel := model.NewRelation("r", s)
	rel.Append(
		model.NewTuple(1, model.I(90210), model.S("LA"), model.S("CA")),
		model.NewTuple(2, model.I(90210), model.S("SF"), model.S("CA")), // city breaks const row
		model.NewTuple(3, model.I(10011), model.S("NY"), model.S("NY")),
		model.NewTuple(4, model.I(10011), model.S("NY"), model.S("NJ")), // state breaks wildcard row
	)
	cfd, err := ParseCFD("c", "zip -> city, state | 90210 => LA, CA ; _ => _, _")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cfd.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(2)
	res, err := core.DetectRules(ctx, rs, rel)
	if err != nil {
		t.Fatal(err)
	}
	var unary, pair int
	for _, v := range res.Violations {
		if len(v.Cells) == 1 {
			unary++
		} else {
			pair++
		}
	}
	// Unary: t2 city != LA. Pair: (1,2) city mismatch and (3,4) state mismatch.
	if unary != 1 {
		t.Errorf("unary = %d, want 1", unary)
	}
	if pair != 2 {
		t.Errorf("pair = %d, want 2: %v", pair, res.Violations)
	}
}

// TestFDWholeKeyRHS runs phi8's shape: one LHS attribute determining two
// RHS attributes, emitting one violation per disagreeing attribute.
func TestFDWholeKeyRHS(t *testing.T) {
	s := model.MustParseSchema("pid:int,city,phone")
	rel := model.NewRelation("r", s)
	rel.Append(
		model.NewTuple(1, model.I(7), model.S("NY"), model.S("111")),
		model.NewTuple(2, model.I(7), model.S("LA"), model.S("222")),
	)
	fd, _ := ParseFD("phi8", "pid -> city, phone")
	rule, err := fd.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %d, want 2 (city and phone)", len(res.Violations))
	}
}
