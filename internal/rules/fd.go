// Package rules translates declarative quality rules — functional
// dependencies (FDs), conditional functional dependencies (CFDs) and denial
// constraints (DCs) — into BigDansing jobs built from the five logical
// operators, deriving the optimization hints (blocking keys, symmetry,
// ordering conditions) the physical planner exploits. It also ships the
// UDF-style rules of the evaluation: Levenshtein deduplication (φ4/φ5) and
// the similarity-plus-mapping rule φU of Example 1.
package rules

import (
	"fmt"
	"strings"

	"bigdansing/internal/core"
	"bigdansing/internal/model"
)

// FD is a functional dependency LHS -> RHS: tuples agreeing on every LHS
// attribute must agree on every RHS attribute.
type FD struct {
	ID  string
	LHS []string
	RHS []string
}

// ParseFD parses "zipcode -> city" or "providerID -> city, phone".
func ParseFD(id, spec string) (*FD, error) {
	lhsRaw, rhsRaw, ok := strings.Cut(spec, "->")
	if !ok {
		return nil, fmt.Errorf("rules: FD %s: missing '->' in %q", id, spec)
	}
	split := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	fd := &FD{ID: id, LHS: split(lhsRaw), RHS: split(rhsRaw)}
	if len(fd.LHS) == 0 || len(fd.RHS) == 0 {
		return nil, fmt.Errorf("rules: FD %s: empty side in %q", id, spec)
	}
	return fd, nil
}

// String renders the FD.
func (fd *FD) String() string {
	return fmt.Sprintf("%s: %s -> %s", fd.ID, strings.Join(fd.LHS, ","), strings.Join(fd.RHS, ","))
}

// Compile translates the FD into a rule over the given schema — the
// automatic job generation of Section 3.1. The generated operators mirror
// Listings 1, 2, 5 and 6:
//
//	Block   keys on the LHS values (Scope is logically a projection to
//	        LHS ∪ RHS; physically it is pushed down to the storage layer,
//	        see package storage, so cells keep their base-table columns),
//	Iterate defaults to unique pairs (FD detection is symmetric),
//	Detect  reports pairs agreeing on the LHS but disagreeing on some RHS
//	        attribute — the LHS check makes Detect self-contained, so the
//	        rule stays correct even when run Detect-only (Figure 12(a)),
//	GenFix  proposes equating the two RHS values.
func (fd *FD) Compile(schema *model.Schema) (*core.Rule, error) {
	lhsIdx, err := resolveAttrs(schema, fd.LHS)
	if err != nil {
		return nil, fmt.Errorf("rules: FD %s: %w", fd.ID, err)
	}
	rhsIdx, err := resolveAttrs(schema, fd.RHS)
	if err != nil {
		return nil, fmt.Errorf("rules: FD %s: %w", fd.ID, err)
	}
	rhsNames := make([]string, len(rhsIdx))
	for i, c := range rhsIdx {
		rhsNames[i] = schema.Name(c)
	}
	ruleID := fd.ID
	blockAttr := ""
	if len(lhsIdx) == 1 {
		blockAttr = schema.Name(lhsIdx[0])
	}

	rule := &core.Rule{
		ID:        ruleID,
		BlockAttr: blockAttr,
		Block: func(t model.Tuple) model.Value {
			// Single-attribute LHS (the common case): the cell value itself
			// is the block key — no per-record string is built.
			if len(lhsIdx) == 1 {
				return t.Cell(lhsIdx[0])
			}
			return compositeKey(t, lhsIdx)
		},
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			for _, c := range lhsIdx {
				if !l.Cell(c).Equal(r.Cell(c)) {
					return nil
				}
			}
			var out []model.Violation
			for i, c := range rhsIdx {
				lv, rv := l.Cell(c), r.Cell(c)
				if lv.Equal(rv) {
					continue
				}
				v := model.NewViolation(ruleID,
					model.NewCell(l.ID, c, rhsNames[i], lv),
					model.NewCell(r.ID, c, rhsNames[i], rv),
				)
				out = append(out, v)
			}
			return out
		},
		GenFix: func(v model.Violation) []model.Fix {
			if len(v.Cells) < 2 {
				return nil
			}
			return []model.Fix{model.NewCellFix(v.Cells[0], model.OpEQ, v.Cells[1])}
		},
	}
	if len(lhsIdx) > 1 {
		// Each single LHS attribute is a coarser — but still correct —
		// block key: Detect re-checks the full LHS per pair, so blocking on
		// any one LHS column surfaces every violation the composite key
		// does. The cost planner may pick one when the composite key is
		// heavily skewed or its key strings dominate the shuffle.
		for _, c := range lhsIdx {
			col := c
			rule.AltBlocks = append(rule.AltBlocks, func(t model.Tuple) model.Value {
				return t.Cell(col)
			})
			rule.AltBlockAttrs = append(rule.AltBlockAttrs, schema.Name(col))
		}
	}
	rule.Vec = fdVecForms(ruleID, lhsIdx, rhsIdx, rhsNames)
	return rule, nil
}

// fdVecForms builds the FD's vectorized Detect. A single-attribute LHS
// blocks on the LHS value itself and groups by its exact ValueKey — key
// equality implies value equality, so every pair in the block already
// agrees on the LHS and the kernel compares RHS cells directly with no
// per-block allocation and no per-pair LHS check (which the tuple Detect
// still pays). A composite LHS blocks on a joined key string that can
// collide across kinds, so its kernel gathers the LHS and RHS columns into
// flat vectors once per block and keeps the self-contained LHS equality
// check. Violations and their order match the tuple Detect exactly.
func fdVecForms(ruleID string, lhsIdx, rhsIdx []int, rhsNames []string) *core.VecForms {
	nl, nr := len(lhsIdx), len(rhsIdx)
	vec := &core.VecForms{BlockCol: -1}
	if nl == 1 {
		vec.BlockCol = lhsIdx[0]
	}
	emitRHS := func(out []model.Violation, l, r model.Tuple, lv, rv model.Value, c int, y int) []model.Violation {
		return append(out, model.NewViolation(ruleID,
			model.NewCell(l.ID, c, rhsNames[y], lv),
			model.NewCell(r.ID, c, rhsNames[y], rv),
		))
	}
	vec.DetectBlock = func(us []model.Tuple, ordered bool) []model.Violation {
		n := len(us)
		if n < 2 {
			return nil
		}
		var out []model.Violation
		var emit func(i, j int)
		if nl == 1 {
			emit = func(i, j int) {
				for y, c := range rhsIdx {
					lv, rv := us[i].Cell(c), us[j].Cell(c)
					if !lv.Equal(rv) {
						out = emitRHS(out, us[i], us[j], lv, rv, c, y)
					}
				}
			}
		} else {
			buf := make([]model.Value, (nl+nr)*n) // one allocation for all vectors
			vecs := make([][]model.Value, nl+nr)
			for x := range vecs {
				vecs[x] = buf[x*n : (x+1)*n]
			}
			for i, t := range us {
				for x, c := range lhsIdx {
					vecs[x][i] = t.Cell(c)
				}
				for y, c := range rhsIdx {
					vecs[nl+y][i] = t.Cell(c)
				}
			}
			emit = func(i, j int) {
				for x := 0; x < nl; x++ {
					if !vecs[x][i].Equal(vecs[x][j]) {
						return
					}
				}
				for y := 0; y < nr; y++ {
					lv, rv := vecs[nl+y][i], vecs[nl+y][j]
					if !lv.Equal(rv) {
						out = emitRHS(out, us[i], us[j], lv, rv, rhsIdx[y], y)
					}
				}
			}
		}
		if ordered {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if j != i {
						emit(i, j)
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					emit(i, j)
				}
			}
		}
		return out
	}
	return vec
}

// compositeKey renders a multi-attribute blocking key into one string
// value: kind-tagged cell keys joined with a separator, so composite blocks
// stay distinct across kinds. Single-attribute blocks should return the
// cell value directly instead and skip the allocation.
func compositeKey(t model.Tuple, cols []int) model.Value {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(t.Cell(c).Key())
	}
	return model.S(b.String())
}

// resolveAttrs maps attribute names to column indexes.
func resolveAttrs(schema *model.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		c, ok := schema.Index(n)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q (schema: %s)", n, schema)
		}
		out[i] = c
	}
	return out, nil
}
