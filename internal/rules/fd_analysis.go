package rules

import (
	"sort"
	"strings"
)

// FD static analysis: attribute closure under Armstrong's axioms, FD
// implication, and minimal cover. Together with the DC subsumption in
// analysis.go this implements the "multiple data quality rule optimization"
// the paper leaves as future work (Section 8): a rule set is reduced before
// planning, so the engine detects with fewer pipelines.

// attrSet is a case-insensitive attribute set.
type attrSet map[string]bool

func newAttrSet(attrs []string) attrSet {
	s := make(attrSet, len(attrs))
	for _, a := range attrs {
		s[strings.ToLower(a)] = true
	}
	return s
}

func (s attrSet) containsAll(attrs []string) bool {
	for _, a := range attrs {
		if !s[strings.ToLower(a)] {
			return false
		}
	}
	return true
}

// Closure computes the attribute closure of attrs under the FD set: the
// largest set X+ such that attrs -> X+ is implied by fds.
func Closure(attrs []string, fds []*FD) []string {
	closure := newAttrSet(attrs)
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if closure.containsAll(fd.LHS) {
				for _, r := range fd.RHS {
					k := strings.ToLower(r)
					if !closure[k] {
						closure[k] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(closure))
	for a := range closure {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// FDImplied reports whether fd is implied by the FD set: fd's RHS is in the
// closure of its LHS.
func FDImplied(fd *FD, fds []*FD) bool {
	return newAttrSet(Closure(fd.LHS, fds)).containsAll(fd.RHS)
}

// FDMinimalCover computes a canonical cover of the FD set: right-hand
// sides split to single attributes, extraneous left-hand attributes
// removed, and implied FDs dropped. The surviving FDs carry derived IDs
// ("<original-id>/<rhs>") so violations remain attributable.
func FDMinimalCover(fds []*FD) []*FD {
	// 1. Split RHS into singletons.
	var singles []*FD
	for _, fd := range fds {
		for _, r := range fd.RHS {
			id := fd.ID
			if len(fd.RHS) > 1 {
				id = fd.ID + "/" + strings.ToLower(r)
			}
			singles = append(singles, &FD{ID: id, LHS: append([]string(nil), fd.LHS...), RHS: []string{r}})
		}
	}
	// 2. Remove extraneous LHS attributes: A is extraneous in X -> B when
	// (X \ A)+ still contains B.
	for _, fd := range singles {
		for i := 0; i < len(fd.LHS); {
			reduced := append(append([]string(nil), fd.LHS[:i]...), fd.LHS[i+1:]...)
			if len(reduced) > 0 && newAttrSet(Closure(reduced, singles)).containsAll(fd.RHS) {
				fd.LHS = reduced
				continue // retry the same index against the shorter LHS
			}
			i++
		}
	}
	// 3. Remove redundant FDs: fd is redundant when implied by the rest.
	// Iterate to a fixpoint, dropping at most one per pass so order effects
	// stay deterministic (earlier-declared FDs survive ties).
	kept := append([]*FD(nil), singles...)
	for {
		dropped := false
		for i := len(kept) - 1; i >= 0; i-- {
			rest := append(append([]*FD(nil), kept[:i]...), kept[i+1:]...)
			if FDImplied(kept[i], rest) {
				kept = rest
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}
	// 4. Merge same-LHS singletons back together for fewer pipelines.
	type groupKey string
	keyOf := func(lhs []string) groupKey {
		ls := make([]string, len(lhs))
		for i, a := range lhs {
			ls[i] = strings.ToLower(a)
		}
		sort.Strings(ls)
		return groupKey(strings.Join(ls, ","))
	}
	grouped := map[groupKey]*FD{}
	var order []groupKey
	for _, fd := range kept {
		k := keyOf(fd.LHS)
		if g, ok := grouped[k]; ok {
			g.RHS = append(g.RHS, fd.RHS...)
			g.ID = strings.SplitN(g.ID, "/", 2)[0]
		} else {
			cp := &FD{ID: fd.ID, LHS: fd.LHS, RHS: append([]string(nil), fd.RHS...)}
			grouped[k] = cp
			order = append(order, k)
		}
	}
	out := make([]*FD, 0, len(order))
	for _, k := range order {
		out = append(out, grouped[k])
	}
	return out
}
