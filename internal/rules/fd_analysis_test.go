package rules

import (
	"sort"
	"strings"
	"testing"
)

func fdOf(t *testing.T, id, spec string) *FD {
	t.Helper()
	fd, err := ParseFD(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

func TestClosure(t *testing.T) {
	fds := []*FD{
		fdOf(t, "f1", "a -> b"),
		fdOf(t, "f2", "b -> c"),
		fdOf(t, "f3", "c, d -> e"),
	}
	got := Closure([]string{"a"}, fds)
	want := []string{"a", "b", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("closure(a) = %v, want %v", got, want)
	}
	got = Closure([]string{"a", "d"}, fds)
	if len(got) != 5 {
		t.Errorf("closure(a,d) = %v, want all five", got)
	}
}

func TestFDImplied(t *testing.T) {
	fds := []*FD{
		fdOf(t, "f1", "a -> b"),
		fdOf(t, "f2", "b -> c"),
	}
	if !FDImplied(fdOf(t, "x", "a -> c"), fds) {
		t.Error("transitivity: a -> c is implied")
	}
	if FDImplied(fdOf(t, "x", "c -> a"), fds) {
		t.Error("c -> a is not implied")
	}
	if !FDImplied(fdOf(t, "x", "a, z -> b"), fds) {
		t.Error("augmentation: a,z -> b is implied")
	}
}

func TestFDMinimalCoverDropsImplied(t *testing.T) {
	fds := []*FD{
		fdOf(t, "f1", "a -> b"),
		fdOf(t, "f2", "b -> c"),
		fdOf(t, "f3", "a -> c"), // implied transitively
	}
	cover := FDMinimalCover(fds)
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 FDs", cover)
	}
	for _, fd := range cover {
		if fd.ID == "f3" {
			t.Error("implied FD should be dropped")
		}
	}
}

func TestFDMinimalCoverRemovesExtraneousLHS(t *testing.T) {
	fds := []*FD{
		fdOf(t, "f1", "a -> b"),
		fdOf(t, "f2", "a, b -> c"), // b is extraneous given a -> b
	}
	cover := FDMinimalCover(fds)
	// After removing the extraneous b, a -> c merges with a -> b into a
	// single FD a -> b, c.
	if len(cover) != 1 {
		t.Fatalf("cover = %v, want one merged FD", cover)
	}
	if len(cover[0].LHS) != 1 || strings.ToLower(cover[0].LHS[0]) != "a" {
		t.Errorf("lhs = %v, want [a]", cover[0].LHS)
	}
	rhs := append([]string(nil), cover[0].RHS...)
	sort.Strings(rhs)
	if strings.Join(rhs, ",") != "b,c" {
		t.Errorf("rhs = %v, want b and c", rhs)
	}
}

func TestFDMinimalCoverMergesSameLHS(t *testing.T) {
	fds := []*FD{
		fdOf(t, "f1", "pid -> city"),
		fdOf(t, "f2", "pid -> phone"),
	}
	cover := FDMinimalCover(fds)
	if len(cover) != 1 {
		t.Fatalf("cover = %d FDs, want merged single", len(cover))
	}
	rhs := append([]string(nil), cover[0].RHS...)
	sort.Strings(rhs)
	if strings.Join(rhs, ",") != "city,phone" {
		t.Errorf("merged rhs = %v", rhs)
	}
}

func TestFDMinimalCoverSplitRHSIDsTraceable(t *testing.T) {
	fds := []*FD{fdOf(t, "phi8", "pid -> city, phone"), fdOf(t, "other", "zip -> state")}
	cover := FDMinimalCover(fds)
	if len(cover) != 2 {
		t.Fatalf("cover = %v", cover)
	}
}

func TestFDMinimalCoverPreservesSemantics(t *testing.T) {
	// Every original FD must be implied by the cover and vice versa.
	fds := []*FD{
		fdOf(t, "f1", "a -> b, c"),
		fdOf(t, "f2", "b -> c"),
		fdOf(t, "f3", "a, b -> d"),
		fdOf(t, "f4", "a -> d"), // makes b extraneous in f3 / f3 redundant
	}
	cover := FDMinimalCover(fds)
	for _, fd := range fds {
		if !FDImplied(fd, cover) {
			t.Errorf("original %v not implied by cover", fd)
		}
	}
	for _, fd := range cover {
		if !FDImplied(fd, fds) {
			t.Errorf("cover FD %v not implied by originals", fd)
		}
	}
}
