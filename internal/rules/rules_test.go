package rules

import (
	"fmt"
	"reflect"
	"testing"

	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

func taxRelation() *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	add := func(id int64, name string, zip int64, city, state string, salary, rate float64) {
		rel.Append(model.NewTuple(id, model.S(name), model.I(zip), model.S(city), model.S(state), model.F(salary), model.F(rate)))
	}
	add(1, "Annie", 10011, "NY", "NY", 24000, 15)
	add(2, "Laure", 90210, "LA", "CA", 25000, 10)
	add(3, "John", 60601, "CH", "IL", 40000, 25)
	add(4, "Mark", 90210, "SF", "CA", 88000, 28)
	add(5, "Robert", 68270, "CH", "IL", 15000, 20)
	add(6, "Mary", 90210, "LA", "CA", 81000, 28)
	return rel
}

func TestParseFD(t *testing.T) {
	fd, err := ParseFD("phi1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.LHS) != 1 || fd.LHS[0] != "zipcode" || fd.RHS[0] != "city" {
		t.Errorf("fd = %+v", fd)
	}
	multi, err := ParseFD("phi8", "providerID -> city, phone")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.RHS) != 2 {
		t.Errorf("multi rhs = %v", multi.RHS)
	}
	if _, err := ParseFD("bad", "no arrow"); err == nil {
		t.Error("missing arrow should fail")
	}
	if _, err := ParseFD("bad", "-> city"); err == nil {
		t.Error("empty lhs should fail")
	}
}

func TestFDCompileAndDetect(t *testing.T) {
	rel := taxRelation()
	fd, _ := ParseFD("phi1", "zipcode -> city")
	rule, err := fd.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %d, want 2 ((t2,t4),(t4,t6))", len(res.Violations))
	}
	for _, v := range res.Violations {
		for _, c := range v.Cells {
			if c.Attr != "city" || c.Col != 2 {
				t.Errorf("violation cell should address original city column: %+v", c)
			}
		}
	}
	// Fixes equate the two cities.
	for _, fs := range res.FixSets {
		if len(fs.Fixes) != 1 || fs.Fixes[0].Op != model.OpEQ || !fs.Fixes[0].RightIsCell {
			t.Errorf("fd fix = %v", fs.Fixes)
		}
	}
}

func TestFDUnknownAttr(t *testing.T) {
	rel := taxRelation()
	fd, _ := ParseFD("phiX", "zipcode -> nothere")
	if _, err := fd.Compile(rel.Schema); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestFDMultiAttrLHS(t *testing.T) {
	rel := taxRelation()
	fd, _ := ParseFD("phiM", "city, state -> zipcode")
	rule, err := fd.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	// (CH,IL) appears with zipcodes 60601 and 68270 -> 1 violation.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(res.Violations), res.Violations)
	}
}

func TestParseDC(t *testing.T) {
	dc, err := ParseDC("phi2", "t1.salary > t2.salary & t1.rate < t2.rate")
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Preds) != 2 {
		t.Fatalf("preds = %d", len(dc.Preds))
	}
	if dc.Preds[0].Op != model.OpGT || dc.Preds[0].LeftTuple != 1 || dc.Preds[0].RightTuple != 2 {
		t.Errorf("pred 0 = %+v", dc.Preds[0])
	}
	if dc.Unary() {
		t.Error("binary DC")
	}
	if dc.Symmetric() {
		t.Error("ordering DC is asymmetric")
	}

	cdc, err := ParseDC("c", "t1.role = 'M' & t1.city != 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	if !cdc.Unary() {
		t.Error("constant-only DC is unary")
	}
	if !cdc.Preds[0].RightIsConst || cdc.Preds[0].Const != model.S("M") {
		t.Errorf("const pred = %+v", cdc.Preds[0])
	}

	if _, err := ParseDC("bad", "t1.a ~ t2.a"); err == nil {
		t.Error("unknown operator should fail")
	}
	if _, err := ParseDC("bad", ""); err == nil {
		t.Error("empty DC should fail")
	}
	if _, err := ParseDC("bad", "t3.a = t1.a"); err == nil {
		t.Error("unknown tuple variable should fail")
	}
}

func TestDCCompileOrderingUsesOCJoin(t *testing.T) {
	rel := taxRelation()
	dc, _ := ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	rule, err := dc.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rule.OrderConds) != 2 {
		t.Fatalf("order conds = %v", rule.OrderConds)
	}
	lp, _ := core.PlanRule(rule, rel)
	pp, err := core.NewPlanner().Plan(lp)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Pipelines[0].Impl != core.IterOCJoin {
		t.Fatalf("impl = %v, want OCJoin", pp.Pipelines[0].Impl)
	}
	ctx := engine.New(4)
	res, err := core.RunPlanSpark(ctx, pp)
	if err != nil {
		t.Fatal(err)
	}
	// Violating pairs in this data: (1,2), (5,2), (5,1).
	if len(res.Violations) != 3 {
		t.Fatalf("violations = %d, want 3: %v", len(res.Violations), res.Violations)
	}
	// GenFix emits a negation per predicate.
	for _, fs := range res.FixSets {
		if len(fs.Fixes) != 2 {
			t.Errorf("dc fixes = %v", fs.Fixes)
		}
	}
}

func TestDCCompileEqualityUsesBlocking(t *testing.T) {
	rel := taxRelation()
	// FD phi1 as a DC: same zipcode, different city.
	dc, _ := ParseDC("phi1dc", "t1.zipcode = t2.zipcode & t1.city != t2.city")
	rule, err := dc.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Block == nil {
		t.Fatal("equality DC should block")
	}
	if rule.BlockRight != nil {
		t.Error("same-attribute equality should not need CoBlock")
	}
	if !rule.Symmetric {
		t.Error("=/!= same-attribute DC is symmetric")
	}
	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %d, want 2", len(res.Violations))
	}
}

func TestDCCoBlockForDifferentAttrs(t *testing.T) {
	// Rule (1)-style: t1.c_name = t2.s_name across one table.
	s := model.MustParseSchema("c_name,c_city,s_name,s_city")
	rel := model.NewRelation("cs", s)
	rel.Append(
		model.NewTuple(1, model.S("acme"), model.S("NY"), model.S("zenith"), model.S("LA")),
		model.NewTuple(2, model.S("zenith"), model.S("SF"), model.S("acme"), model.S("NY")),
	)
	dc, _ := ParseDC("dc1", "t1.c_name = t2.s_name & t1.c_city != t2.s_city")
	rule, err := dc.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Block == nil || rule.BlockRight == nil {
		t.Fatal("different-attribute equality should CoBlock")
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	// t1.c_name=acme matches t2.s_name=acme; c_city NY = s_city NY -> no
	// violation. t2.c_name=zenith matches t1.s_name=zenith; SF != LA -> 1.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(res.Violations), res.Violations)
	}
}

func TestUnaryDC(t *testing.T) {
	rel := taxRelation()
	dc, _ := ParseDC("cap", "t1.salary > 85000")
	rule, err := dc.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !rule.Unary {
		t.Fatal("constant DC should compile unary")
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Cells[0].TupleID != 4 {
		t.Fatalf("violations = %v", res.Violations)
	}
	// The fix negates the predicate: salary <= 85000.
	fixes := res.FixSets[0].Fixes
	if len(fixes) != 1 || fixes[0].Op != model.OpLE || fixes[0].RightIsCell {
		t.Errorf("unary fix = %v", fixes)
	}
}

func TestParseCFDAndCompile(t *testing.T) {
	rel := taxRelation()
	// In zip 90210 the city must be LA; elsewhere plain FD semantics.
	cfd, err := ParseCFD("cfd1", "zipcode -> city | 90210 => LA ; _ => _")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfd.Tableau) != 2 {
		t.Fatalf("tableau = %v", cfd.Tableau)
	}
	rs, err := cfd.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("compiled rules = %d, want unary + pair", len(rs))
	}
	ctx := engine.New(4)
	res, err := core.DetectRules(ctx, rs, rel)
	if err != nil {
		t.Fatal(err)
	}
	// Unary: t4 (90210, SF) breaks the constant row. Pair: (t2,t4), (t4,t6).
	var unary, pair int
	for _, v := range res.Violations {
		if len(v.Cells) == 1 {
			unary++
		} else {
			pair++
		}
	}
	if unary != 1 || pair != 2 {
		t.Fatalf("unary = %d, pair = %d; violations: %v", unary, pair, res.Violations)
	}
}

func TestCFDParseErrors(t *testing.T) {
	if _, err := ParseCFD("x", "a -> b"); err == nil {
		t.Error("missing tableau should fail")
	}
	if _, err := ParseCFD("x", "a -> b | 1, 2 => 3"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ParseCFD("x", "a -> b | 1 ; 2"); err == nil {
		t.Error("row missing => should fail")
	}
}

func TestDedupRule(t *testing.T) {
	s := model.MustParseSchema("id:int,name,phone")
	rel := model.NewRelation("cust", s)
	rel.Append(
		model.NewTuple(1, model.I(1), model.S("Jonathan Smith"), model.S("555-0100")),
		model.NewTuple(2, model.I(2), model.S("Jonathan Smith"), model.S("555-0100")), // exact dup
		model.NewTuple(3, model.I(3), model.S("Jonathon Smith"), model.S("555-0100")), // edit dup
		model.NewTuple(4, model.I(4), model.S("Alice Wong"), model.S("555-0999")),
	)
	rule, err := DedupRule(DedupConfig{ID: "phi4", NameAttr: "name", PhoneAttr: "phone"}, s)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(4)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (1,2), (1,3), (2,3) are duplicates.
	if len(res.Violations) != 3 {
		t.Fatalf("duplicate pairs = %d, want 3: %v", len(res.Violations), res.Violations)
	}
	if _, err := DedupRule(DedupConfig{ID: "x", NameAttr: "ghost"}, s); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestDedupBlockingLimitsComparisons(t *testing.T) {
	s := model.MustParseSchema("id:int,name")
	rel := model.NewRelation("cust", s)
	names := []string{"Smith", "Smyth", "Jones", "Johns", "Brown", "Braun"}
	for i, n := range names {
		rel.Append(model.NewTuple(int64(i), model.I(int64(i)), model.S(n)))
	}
	rule, err := DedupRule(DedupConfig{ID: "p", NameAttr: "name", BlockBySoundex: true, NameThreshold: 0.6}, s)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	// Soundex blocks: {Smith,Smyth}, {Jones,Johns}(J520/J520?), {Brown,Braun}.
	if len(res.Violations) < 2 {
		t.Errorf("expected at least the Smith/Smyth and Brown/Braun pairs, got %v", res.Violations)
	}
}

func TestCountyRule(t *testing.T) {
	s := model.MustParseSchema("name,city")
	rel := model.NewRelation("people", s)
	rel.Append(
		model.NewTuple(1, model.S("William Marsh"), model.S("Durham")),
		model.NewTuple(2, model.S("William Marsch"), model.S("Chapel Hill")), // same county
		model.NewTuple(3, model.S("William Marsh"), model.S("Seattle")),      // other county
	)
	county := map[string]string{"Durham": "Durham County", "Chapel Hill": "Durham County", "Seattle": "King County"}
	rule, err := CountyRule("phiU", s, "name", "city", county, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := engine.New(2)
	res, err := core.DetectRule(ctx, rule, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (t1-t2 only; t3 is in another county): %v", len(res.Violations), res.Violations)
	}
	ids := res.Violations[0].TupleIDs()
	if ids[0] != 1 || ids[1] != 2 {
		t.Errorf("duplicate pair = %v", ids)
	}
}

// legacyOptimize is a verbatim copy of the pre-planner core.Optimize rule
// switch. The property test below pins the static planner to it: for every
// rule family the chosen implementations must match, and the rendered Ops
// may differ only by the partitioning markers the planner now names
// (RangePartition for OCJoin, Co-Block for co-grouped pairs).
func legacyOptimize(lp *core.LogicalPlan) (*core.PhysicalPlan, error) {
	lp = core.Consolidate(lp)
	pp := &core.PhysicalPlan{Name: lp.Name, Logical: lp, SharedScans: lp.SharedScans}
	for _, p := range lp.Pipelines {
		phys := core.PhysicalPipeline{Pipeline: p}
		var ops []string
		for _, b := range p.Branches {
			if len(b.Scopes) > 0 {
				ops = append(ops, "PScope")
			}
		}
		switch {
		case p.Unary:
			phys.Impl = core.IterSingles
		case p.Iterate != nil:
			phys.Impl = core.IterCustom
			if len(p.Branches) > 1 {
				ops = append(ops, "Co-Block")
			} else if p.Branches[0].Block != nil {
				ops = append(ops, "PBlock")
			}
		case len(p.OrderConds) > 0:
			phys.Impl = core.IterOCJoin
		case len(p.Branches) > 1:
			phys.Impl = core.IterCoBlockPairs
			for _, b := range p.Branches {
				if b.Block == nil {
					return nil, fmt.Errorf("core: pipeline %s: CoBlock branches must all have Block operators", p.RuleID)
				}
			}
		case p.Branches[0].Block != nil && p.Symmetric:
			phys.Impl = core.IterUniquePairs
			ops = append(ops, "PBlock")
		case p.Branches[0].Block != nil:
			phys.Impl = core.IterOrderedPairs
			ops = append(ops, "PBlock")
		case p.Symmetric:
			phys.Impl = core.IterUniquePairs
		default:
			phys.Impl = core.IterOrderedPairs
		}
		ops = append(ops, phys.Impl.String(), "PDetect")
		if p.GenFix != nil {
			ops = append(ops, "PGenFix")
		}
		phys.Ops = ops
		pp.Pipelines = append(pp.Pipelines, phys)
	}
	return pp, nil
}

// stripPlannerMarkers removes from ops exactly the occurrences of the new
// partitioning markers that the legacy rendering lacked.
func stripPlannerMarkers(ops, legacy []string) []string {
	count := func(ss []string, m string) int {
		n := 0
		for _, s := range ss {
			if s == m {
				n++
			}
		}
		return n
	}
	out := append([]string(nil), ops...)
	for _, m := range []string{"RangePartition", "Co-Block"} {
		for count(out, m) > count(legacy, m) {
			for i, s := range out {
				if s == m {
					out = append(out[:i], out[i+1:]...)
					break
				}
			}
		}
	}
	return out
}

// TestStaticPlannerMatchesLegacyOptimize is the plan-identity property
// test over the full FD/DC/CFD compilation suite.
func TestStaticPlannerMatchesLegacyOptimize(t *testing.T) {
	rel := taxRelation()
	var suite []*core.Rule

	fd1, _ := ParseFD("phi1", "zipcode -> city")
	r1, err := fd1.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fdM, _ := ParseFD("phiM", "city, state -> zipcode")
	rM, err := fdM.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	dcO, _ := ParseDC("phi2", "t1.rate > t2.rate & t1.salary < t2.salary")
	rO, err := dcO.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	dcE, _ := ParseDC("phi1dc", "t1.zipcode = t2.zipcode & t1.city != t2.city")
	rE, err := dcE.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	dcU, _ := ParseDC("cap", "t1.salary > 85000")
	rU, err := dcU.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := ParseCFD("cfd1", "zipcode -> city | 90210 => LA ; _ => _")
	if err != nil {
		t.Fatal(err)
	}
	rsC, err := cfd.Compile(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	suite = append(suite, r1, rM, rO, rE, rU)
	suite = append(suite, rsC...)

	for _, r := range suite {
		lpA, err := core.PlanRule(r, rel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacyOptimize(lpA)
		if err != nil {
			t.Fatal(err)
		}
		lpB, err := core.PlanRule(r, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.NewPlanner().Plan(lpB)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pipelines) != len(want.Pipelines) {
			t.Fatalf("%s: pipelines %d != %d", r.ID, len(got.Pipelines), len(want.Pipelines))
		}
		for i := range got.Pipelines {
			g, w := got.Pipelines[i], want.Pipelines[i]
			if g.Impl != w.Impl {
				t.Errorf("%s[%d]: impl %v != legacy %v", r.ID, i, g.Impl, w.Impl)
			}
			if len(g.Branches) != len(w.Branches) {
				t.Errorf("%s[%d]: branches %d != legacy %d", r.ID, i, len(g.Branches), len(w.Branches))
			}
			if g.NumParts != w.NumParts {
				t.Errorf("%s[%d]: parts %d != legacy %d", r.ID, i, g.NumParts, w.NumParts)
			}
			if g.Broadcast {
				t.Errorf("%s[%d]: static plan broadcasts", r.ID, i)
			}
			if stripped := stripPlannerMarkers(g.Ops, w.Ops); !reflect.DeepEqual(stripped, w.Ops) {
				t.Errorf("%s[%d]: ops %v != legacy %v", r.ID, i, g.Ops, w.Ops)
			}
		}
	}

	// The consolidated multi-rule plan must agree too.
	lpA, err := core.PlanRules(suite, rel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyOptimize(lpA)
	if err != nil {
		t.Fatal(err)
	}
	lpB, err := core.PlanRules(suite, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.NewPlanner().Plan(lpB)
	if err != nil {
		t.Fatal(err)
	}
	if got.SharedScans != want.SharedScans || len(got.Pipelines) != len(want.Pipelines) {
		t.Fatalf("multi-rule: scans %d/%d pipelines %d/%d", got.SharedScans, want.SharedScans, len(got.Pipelines), len(want.Pipelines))
	}
	for i := range got.Pipelines {
		if got.Pipelines[i].Impl != want.Pipelines[i].Impl {
			t.Errorf("multi-rule[%d]: impl %v != %v", i, got.Pipelines[i].Impl, want.Pipelines[i].Impl)
		}
	}
}
