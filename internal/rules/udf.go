package rules

import (
	"fmt"
	"strings"

	"bigdansing/internal/core"
	"bigdansing/internal/model"
	"bigdansing/internal/simfn"
)

// DedupConfig configures a UDF deduplication rule like the evaluation's
// φ4/φ5: two rows are duplicates when their names are close under
// Levenshtein similarity and (optionally) their phones are close too.
type DedupConfig struct {
	// ID names the rule.
	ID string
	// NameAttr is the attribute compared with Levenshtein similarity.
	NameAttr string
	// PhoneAttr, when non-empty, must also be similar.
	PhoneAttr string
	// NameThreshold is the minimum normalized similarity (default 0.8).
	NameThreshold float64
	// PhoneThreshold is the minimum phone similarity (default 0.7).
	PhoneThreshold float64
	// BlockBySoundex keys candidate blocks on Soundex(name); otherwise the
	// block key is the lower-cased first three characters. Blocking is what
	// makes UDF dedup scale (Figure 12(a)'s full-API vs Detect-only gap).
	BlockBySoundex bool
}

// DedupRule builds the deduplication rule over the given schema. The
// generated GenFix proposes equating both tuples' name and phone so that
// one of them disappears under set semantics, as Section 2.1 describes for
// rule φU.
func DedupRule(cfg DedupConfig, schema *model.Schema) (*core.Rule, error) {
	nameCol, ok := schema.Index(cfg.NameAttr)
	if !ok {
		return nil, fmt.Errorf("rules: dedup %s: unknown attribute %q", cfg.ID, cfg.NameAttr)
	}
	phoneCol := -1
	if cfg.PhoneAttr != "" {
		phoneCol, ok = schema.Index(cfg.PhoneAttr)
		if !ok {
			return nil, fmt.Errorf("rules: dedup %s: unknown attribute %q", cfg.ID, cfg.PhoneAttr)
		}
	}
	nameTh := cfg.NameThreshold
	if nameTh == 0 {
		nameTh = 0.8
	}
	phoneTh := cfg.PhoneThreshold
	if phoneTh == 0 {
		phoneTh = 0.7
	}
	ruleID := cfg.ID
	nameName := schema.Name(nameCol)
	phoneName := ""
	if phoneCol >= 0 {
		phoneName = schema.Name(phoneCol)
	}

	return &core.Rule{
		ID: ruleID,
		Block: func(t model.Tuple) model.Value {
			name := t.Cell(nameCol).String()
			if cfg.BlockBySoundex {
				return model.S(simfn.Soundex(name))
			}
			name = strings.ToLower(name)
			if len(name) > 3 {
				name = name[:3]
			}
			return model.S(name)
		},
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			ln, rn := l.Cell(nameCol).String(), r.Cell(nameCol).String()
			if simfn.LevenshteinSimilarity(ln, rn) < nameTh {
				return nil
			}
			cells := []model.Cell{
				model.NewCell(l.ID, nameCol, nameName, l.Cell(nameCol)),
				model.NewCell(r.ID, nameCol, nameName, r.Cell(nameCol)),
			}
			if phoneCol >= 0 {
				lp, rp := l.Cell(phoneCol).String(), r.Cell(phoneCol).String()
				if simfn.LevenshteinSimilarity(lp, rp) < phoneTh {
					return nil
				}
				cells = append(cells,
					model.NewCell(l.ID, phoneCol, phoneName, l.Cell(phoneCol)),
					model.NewCell(r.ID, phoneCol, phoneName, r.Cell(phoneCol)))
			}
			return []model.Violation{model.NewViolation(ruleID, cells...)}
		},
		GenFix: func(v model.Violation) []model.Fix {
			var fixes []model.Fix
			for i := 0; i+1 < len(v.Cells); i += 2 {
				fixes = append(fixes, model.NewCellFix(v.Cells[i+1], model.OpEQ, v.Cells[i]))
			}
			return fixes
		},
	}, nil
}

// CountyRule builds rule φU of Example 1: two tuples refer to the same
// individual when their names are similar and their cities fall in the same
// county, looked up in a mapping table. It demonstrates a procedural rule
// that no declarative formalism expresses (Section 1).
func CountyRule(id string, schema *model.Schema, nameAttr, cityAttr string, county map[string]string, threshold float64) (*core.Rule, error) {
	nameCol, ok := schema.Index(nameAttr)
	if !ok {
		return nil, fmt.Errorf("rules: %s: unknown attribute %q", id, nameAttr)
	}
	cityCol, ok := schema.Index(cityAttr)
	if !ok {
		return nil, fmt.Errorf("rules: %s: unknown attribute %q", id, cityAttr)
	}
	if threshold == 0 {
		threshold = 0.8
	}
	getCounty := func(city string) string {
		if c, ok := county[city]; ok {
			return c
		}
		return city // unknown cities are their own county
	}
	nameName, cityName := schema.Name(nameCol), schema.Name(cityCol)
	return &core.Rule{
		ID: id,
		// Block on county so only same-county candidates pair up.
		Block: func(t model.Tuple) model.Value {
			return model.S(getCounty(t.Cell(cityCol).String()))
		},
		Symmetric: true,
		Detect: func(it core.Item) []model.Violation {
			l, r := it.Left(), it.Right()
			if simfn.LevenshteinSimilarity(l.Cell(nameCol).String(), r.Cell(nameCol).String()) < threshold {
				return nil
			}
			if getCounty(l.Cell(cityCol).String()) != getCounty(r.Cell(cityCol).String()) {
				return nil
			}
			return []model.Violation{model.NewViolation(id,
				model.NewCell(l.ID, nameCol, nameName, l.Cell(nameCol)),
				model.NewCell(r.ID, nameCol, nameName, r.Cell(nameCol)),
				model.NewCell(l.ID, cityCol, cityName, l.Cell(cityCol)),
				model.NewCell(r.ID, cityCol, cityName, r.Cell(cityCol)),
			)}
		},
		GenFix: func(v model.Violation) []model.Fix {
			// Propose assigning the same name so one tuple subsumes the
			// other under set semantics.
			return []model.Fix{model.NewCellFix(v.Cells[1], model.OpEQ, v.Cells[0])}
		},
	}, nil
}
