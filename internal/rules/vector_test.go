package rules

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
)

// vecRandomTax generates tax-shaped data dense in block collisions and in
// the value-normalization corners: NaN, -0, nulls and cross-kind numerics.
func vecRandomTax(n int, seed int64) *model.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := model.NewRelation("tax", s)
	cities := []string{"NY", "LA", "CH", "SF"}
	states := []string{"NY", "CA", "IL"}
	for i := 0; i < n; i++ {
		var rate model.Value
		switch rng.Intn(6) {
		case 0:
			rate = model.F(math.NaN())
		case 1:
			rate = model.F(math.Copysign(0, -1))
		case 2:
			rate = model.I(int64(rng.Intn(5)))
		case 3:
			rate = model.Null()
		default:
			rate = model.F(float64(rng.Intn(30)))
		}
		rel.Append(model.NewTuple(int64(i+1),
			model.S(fmt.Sprintf("p%d", i)),
			model.I(int64(rng.Intn(15))),
			model.S(cities[rng.Intn(len(cities))]),
			model.S(states[rng.Intn(len(states))]),
			model.F(float64(rng.Intn(5000))),
			rate,
		))
	}
	return rel
}

// requireSameDetect asserts batch-path detection matches the tuple path
// violation for violation, in order.
func requireSameDetect(t *testing.T, r *core.Rule, rel *model.Relation, sizes []int) {
	t.Helper()
	want, err := core.DetectRule(engine.New(4), r, rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range sizes {
		ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, BatchSize: size})
		got, err := core.DetectRule(ctx, r, rel)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Violations) != len(want.Violations) {
			t.Fatalf("%s batch=%d rows=%d: %d violations, want %d",
				r.ID, size, rel.Len(), len(got.Violations), len(want.Violations))
		}
		for i := range want.Violations {
			if want.Violations[i].MapKey() != got.Violations[i].MapKey() {
				t.Fatalf("%s batch=%d: violation %d differs:\n  want %v\n  got  %v",
					r.ID, size, i, want.Violations[i], got.Violations[i])
			}
			if len(want.FixSets[i].Fixes) != len(got.FixSets[i].Fixes) {
				t.Fatalf("%s batch=%d: violation %d fix count differs", r.ID, size, i)
			}
		}
	}
}

var vecSizes = []int{1, 3, 7, 1024}

func TestVecFDEquivalence(t *testing.T) {
	schema := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	compile := func(spec string) *core.Rule {
		fd, err := ParseFD("fd", spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := fd.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		if r.Vec == nil || r.Vec.DetectBlock == nil {
			t.Fatalf("compiled FD %q should carry vectorized forms", spec)
		}
		return r
	}
	single := compile("zipcode -> city")
	if single.Vec.BlockCol != 1 {
		t.Fatalf("single-attribute FD should block on column 1, got %d", single.Vec.BlockCol)
	}
	multi := compile("zipcode, state -> city, rate")
	if multi.Vec.BlockCol != -1 {
		t.Fatal("composite-LHS FD must not claim a single block column")
	}
	// Empty, single-row, short-tail and full-size relations.
	for _, n := range []int{0, 1, 5, 400} {
		rel := vecRandomTax(n, int64(n)+21)
		requireSameDetect(t, single, rel, vecSizes)
		requireSameDetect(t, multi, rel, vecSizes)
	}
}

func TestVecDCEquivalence(t *testing.T) {
	schema := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	compile := func(spec string, wantVec bool) *core.Rule {
		t.Helper()
		dc, err := ParseDC("dc", spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := dc.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		if wantVec && r.Vec == nil {
			t.Fatalf("compiled DC %q should carry vectorized forms", spec)
		}
		return r
	}
	rel := vecRandomTax(400, 42)

	// Unary (constant predicates): DetectBatch path.
	unary := compile("t1.salary > 2500 & t1.rate < 3", true)
	if unary.Vec.DetectBatch == nil {
		t.Fatal("unary DC should compile a batch Detect")
	}
	requireSameDetect(t, unary, rel, vecSizes)

	// Blocked symmetric (same attribute both sides): unique pairs.
	sym := compile("t1.city = t2.city & t1.state != t2.state", true)
	requireSameDetect(t, sym, rel, vecSizes)

	// Blocked asymmetric: ordered-pairs enumeration plus dedup.
	asym := compile("t1.zipcode = t2.zipcode & t1.salary > t2.salary & t1.rate < 20", true)
	requireSameDetect(t, asym, rel, vecSizes)

	// OCJoin shape compiles no vec forms and still matches via fallback.
	ocj := compile("t1.salary > t2.salary & t1.rate < t2.rate", false)
	if ocj.Vec != nil {
		t.Fatal("OCJoin-shaped DC should stay on the tuple path")
	}
	requireSameDetect(t, ocj, vecRandomTax(120, 8), vecSizes)

	// Short tails and empty input for the unary batch kernel.
	for _, n := range []int{0, 1, 5} {
		requireSameDetect(t, unary, vecRandomTax(n, int64(n)+3), vecSizes)
	}
}

func TestVecCleanEquivalence(t *testing.T) {
	// Full FD+DC cleansing loop: the batch path must produce the exact
	// repaired instance the tuple path produces.
	schema := model.MustParseSchema("name,zipcode:int,city,state,salary:float,rate:float")
	rel := vecRandomTax(300, 77)

	buildRules := func() []*core.Rule {
		fd, err := ParseFD("fd1", "zipcode -> city")
		if err != nil {
			t.Fatal(err)
		}
		fdr, err := fd.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := ParseDC("dc1", "t1.city = t2.city & t1.state != t2.state")
		if err != nil {
			t.Fatal(err)
		}
		dcr, err := dc.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		return []*core.Rule{fdr, dcr}
	}

	clean := func(batchSize int) *cleanse.Result {
		t.Helper()
		opts := []cleanse.Option{cleanse.WithMaxIterations(4)}
		if batchSize > 0 {
			opts = append(opts, cleanse.WithBatchSize(batchSize))
		}
		c, err := cleanse.NewCleaner(engine.New(4), buildRules(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Clean(rel)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := clean(0)
	for _, size := range []int{1, 64, 1024} {
		got := clean(size)
		if got.Clean.Len() != want.Clean.Len() {
			t.Fatalf("batch=%d: %d tuples, want %d", size, got.Clean.Len(), want.Clean.Len())
		}
		for i := range want.Clean.Tuples {
			w, g := want.Clean.Tuples[i], got.Clean.Tuples[i]
			if w.ID != g.ID {
				t.Fatalf("batch=%d: tuple %d id %d, want %d", size, i, g.ID, w.ID)
			}
			for c := 0; c < schema.Len(); c++ {
				if !w.Cell(c).Equal(g.Cell(c)) {
					t.Fatalf("batch=%d: tuple %d col %d: %v, want %v",
						size, i, c, g.Cell(c), w.Cell(c))
				}
			}
		}
		wr, gr := want.Report(), got.Report()
		if wr.InitialViolations != gr.InitialViolations || wr.Iterations != gr.Iterations {
			t.Fatalf("batch=%d: report differs: %d/%d violations, %d/%d iterations",
				size, gr.InitialViolations, wr.InitialViolations, gr.Iterations, wr.Iterations)
		}
	}
}

func TestVecBatchSizeValidation(t *testing.T) {
	fd, err := ParseFD("fd1", "zipcode -> city")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fd.Compile(model.MustParseSchema("name,zipcode:int,city"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cleanse.NewCleaner(engine.New(2), []*core.Rule{r}, cleanse.WithBatchSize(-1)); err == nil {
		t.Fatal("negative WithBatchSize should be rejected at construction")
	}
	if _, err := cleanse.NewCleaner(engine.New(2), []*core.Rule{r}, cleanse.WithBatchSize(0)); err != nil {
		t.Fatalf("zero WithBatchSize is the tuple path and must validate: %v", err)
	}
}
