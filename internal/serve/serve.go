// Package serve hosts streaming cleanse sessions behind an HTTP/JSON API —
// the long-running face of the system. Each named session owns a full
// cleansing stack (a dataflow context, a compiled rule set, a
// cleanse.Session with its incremental detection caches and repair memory,
// and a tracer for EXPLAIN output), so many tenants can stream batches in
// concurrently without sharing state.
//
// Ingestion is asynchronous with backpressure: each session has a bounded
// operation queue drained by one worker goroutine; a batch that finds the
// queue full is rejected with 429 instead of blocking the client or
// buffering without bound. Flush is synchronous — it runs after everything
// queued ahead of it and returns the flush report. Shutdown drains every
// queue, runs a final flush per session, and closes the sessions.
//
// API (all bodies JSON unless noted):
//
//	GET    /sessions                 list open sessions
//	POST   /sessions/{name}          create: {schema, rules:[{id,kind,spec}], ...}
//	GET    /sessions/{name}          status snapshot
//	DELETE /sessions/{name}          drain queue, final flush, close; returns the report
//	POST   /sessions/{name}/ingest   {tuples:[[v,...],...]} -> 202 queued / 429 busy
//	POST   /sessions/{name}/flush    run the detect-repair loop; returns the report
//	GET    /sessions/{name}/relation repaired-so-far relation as CSV
//	GET    /sessions/{name}/explain  EXPLAIN ANALYZE-style span tree (text)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"bigdansing/internal/cleanse"
	"bigdansing/internal/core"
	"bigdansing/internal/engine"
	"bigdansing/internal/model"
	"bigdansing/internal/probrepair"
	"bigdansing/internal/repair"
	"bigdansing/internal/rules"
	"bigdansing/internal/trace"
)

// Config tunes the server. The zero value is usable.
type Config struct {
	// Workers is the dataflow parallelism of each session's engine context
	// (<=0: 4).
	Workers int
	// QueueDepth bounds each session's pending-operation queue; a full
	// queue rejects ingests with 429 (<=0: 64).
	QueueDepth int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server hosts named streaming cleanse sessions.
type Server struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*stream
	closing bool
}

// New builds a Server.
func New(cfg Config) *Server {
	return &Server{cfg: cfg.withDefaults(), streams: map[string]*stream{}}
}

var (
	errBusy    = errors.New("ingest queue full")
	errClosing = errors.New("session is closing")
)

// stream is one hosted session plus its worker: every mutating operation
// (ingest, flush, explain) runs on the worker goroutine in arrival order,
// so the queue is the single point of serialization and backpressure.
type stream struct {
	name    string
	schema  *model.Schema
	session *cleanse.Session
	tracer  *trace.Tracer
	// planner is the session's cost-based planner (nil for static); its
	// History feeds the /explain audit.
	planner *core.Planner

	mu      sync.Mutex
	closing bool
	lastErr error // first async ingest failure, surfaced in status
	ops     chan func()
	done    chan struct{}
}

func (st *stream) work() {
	for op := range st.ops {
		op()
	}
	close(st.done)
}

// enqueue submits op without waiting for it to run; errBusy when the queue
// is full (the HTTP layer turns that into 429).
func (st *stream) enqueue(op func()) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closing {
		return errClosing
	}
	select {
	case st.ops <- op:
		return nil
	default:
		return errBusy
	}
}

// run submits op and blocks until the worker has executed it — after
// everything queued ahead of it. The send holds the stream mutex, which is
// safe (the worker never takes it) and makes close-vs-send race-free.
func (st *stream) run(op func()) error {
	done := make(chan struct{})
	st.mu.Lock()
	if st.closing {
		st.mu.Unlock()
		return errClosing
	}
	st.ops <- func() { op(); close(done) }
	st.mu.Unlock()
	<-done
	return nil
}

// drain marks the stream closing, lets the worker finish everything already
// queued, and joins it. Idempotent.
func (st *stream) drain() {
	st.mu.Lock()
	if !st.closing {
		st.closing = true
		close(st.ops)
	}
	st.mu.Unlock()
	<-st.done
}

func (st *stream) noteErr(err error) {
	st.mu.Lock()
	if st.lastErr == nil {
		st.lastErr = err
	}
	st.mu.Unlock()
}

// --- request/response shapes ---

type ruleSpec struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // fd | dc | cfd
	Spec string `json:"spec"`
}

type createRequest struct {
	// Schema uses the "name,zipcode:int,rate:float" notation.
	Schema string     `json:"schema"`
	Rules  []ruleSpec `json:"rules"`
	// Algorithm: eq (default) | hypergraph | sampling | prob. "repair" is
	// accepted as an alias key.
	Algorithm     string `json:"algorithm,omitempty"`
	Repair        string `json:"repair,omitempty"`
	Parallel      bool   `json:"parallelRepair,omitempty"`
	MaxIterations int    `json:"maxIterations,omitempty"`
	FreezeAfter   int    `json:"freezeAfter,omitempty"`
	// Seed drives the randomized repair algorithms (sampling, prob);
	// 0 means their default seed of 1.
	Seed int64 `json:"seed,omitempty"`
	// ProbSamples is the recorded Gibbs sweep count per component for the
	// prob algorithm (<=0: the probrepair default).
	ProbSamples int `json:"probSamples,omitempty"`
	// Backend selects the session's execution backend: "local" (default,
	// in-process) or "net" (partition exchanges across spawned worker
	// processes). Closing the session terminates its workers.
	Backend string `json:"backend,omitempty"`
	// NetWorkers is the worker-process count for the net backend
	// (<=0: the engine default of 2).
	NetWorkers int `json:"netWorkers,omitempty"`
	// Planner selects the physical planner: "static" (default, the legacy
	// rule-shape choices) or "cost" (statistics-driven, refined every flush
	// from the session's own measured pipeline stats). Cost-planned
	// sessions expose their chosen-vs-rejected decisions in /explain.
	Planner string `json:"planner,omitempty"`
}

type reportJSON struct {
	Flush               int   `json:"flush"`
	Iterations          int   `json:"iterations"`
	InitialViolations   int   `json:"initialViolations"`
	RemainingViolations int   `json:"remainingViolations"`
	UpdatesApplied      int   `json:"updatesApplied"`
	FrozenCells         int   `json:"frozenCells"`
	Tuples              int   `json:"tuples"`
	DetectMillis        int64 `json:"detectMillis"`
	RepairMillis        int64 `json:"repairMillis"`
}

func toReportJSON(rep cleanse.Report) reportJSON {
	return reportJSON{
		Flush:               rep.Flush,
		Iterations:          rep.Iterations,
		InitialViolations:   rep.InitialViolations,
		RemainingViolations: rep.RemainingViolations,
		UpdatesApplied:      rep.UpdatesApplied,
		FrozenCells:         rep.FrozenCells,
		Tuples:              rep.Tuples,
		DetectMillis:        rep.DetectTime.Milliseconds(),
		RepairMillis:        rep.RepairTime.Milliseconds(),
	}
}

type statusJSON struct {
	Name           string `json:"name"`
	Tuples         int    `json:"tuples"`
	Ingested       int64  `json:"ingested"`
	Flushes        int    `json:"flushes"`
	UpdatesApplied int64  `json:"updatesApplied"`
	FrozenCells    int    `json:"frozenCells"`
	Incremental    bool   `json:"incremental"`
	Queued         int    `json:"queued"`
	LastError      string `json:"lastError,omitempty"`
}

// --- rule and schema compilation ---

// parseSchema wraps the panicking parser into an error return.
func parseSchema(spec string) (s *model.Schema, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if spec == "" {
		return nil, errors.New("empty schema")
	}
	return model.MustParseSchema(spec), nil
}

func compileRules(schema *model.Schema, specs []ruleSpec) ([]*core.Rule, error) {
	var out []*core.Rule
	for i, rs := range specs {
		id := rs.ID
		if id == "" {
			id = fmt.Sprintf("rule%d", i+1)
		}
		switch rs.Kind {
		case "fd":
			fd, err := rules.ParseFD(id, rs.Spec)
			if err != nil {
				return nil, err
			}
			r, err := fd.Compile(schema)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		case "dc":
			dc, err := rules.ParseDC(id, rs.Spec)
			if err != nil {
				return nil, err
			}
			r, err := dc.Compile(schema)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		case "cfd":
			cfd, err := rules.ParseCFD(id, rs.Spec)
			if err != nil {
				return nil, err
			}
			r, err := cfd.Compile(schema)
			if err != nil {
				return nil, err
			}
			out = append(out, r...)
		default:
			return nil, fmt.Errorf("rule %s: unknown kind %q (want fd, dc or cfd)", id, rs.Kind)
		}
	}
	return out, nil
}

// --- lifecycle ---

// open creates a named stream: its own engine context, tracer, and session.
func (s *Server) open(name string, req createRequest) (*stream, error) {
	schema, err := parseSchema(req.Schema)
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	ruleSet, err := compileRules(schema, req.Rules)
	if err != nil {
		return nil, err
	}
	tracer := trace.New()
	var observer engine.Observer = tracer
	// A cost-planned session carries its own FeedbackRecorder teed into the
	// observer: every flush re-plans against the pipeline stats (pairs,
	// violations) the previous flush measured, so long-lived sessions
	// converge on measured costs.
	var planner *core.Planner
	switch req.Planner {
	case "", engine.PlannerStatic:
	case engine.PlannerCost:
		rec := core.NewFeedbackRecorder()
		planner = core.NewPlanner(
			core.WithCostModel(core.NewCostModel()),
			core.WithObserverFeedback(rec),
			core.WithParallelism(s.cfg.Workers),
		)
		observer = engine.Tee(tracer, rec)
	default:
		return nil, fmt.Errorf("unknown planner %q (want %s or %s)", req.Planner, engine.PlannerStatic, engine.PlannerCost)
	}
	opts := []cleanse.Option{
		cleanse.WithObserver(observer),
		cleanse.WithMaxIterations(req.MaxIterations),
		cleanse.WithFreezeAfter(req.FreezeAfter),
	}
	if planner != nil {
		opts = append(opts, cleanse.WithPlanner(planner))
	}
	algoName := req.Algorithm
	if algoName == "" {
		algoName = req.Repair
	}
	switch algoName {
	case "", "eq":
	case "hypergraph":
		opts = append(opts, cleanse.WithAlgorithm(&repair.Hypergraph{}))
	case "sampling":
		opts = append(opts, cleanse.WithAlgorithm(&repair.Sampling{Seed: req.Seed}))
	case "prob":
		samples := req.ProbSamples
		if samples <= 0 {
			samples = probrepair.DefaultSamples
		}
		opts = append(opts, cleanse.WithAlgorithm(&probrepair.Prob{Samples: samples, Seed: req.Seed}))
	default:
		return nil, fmt.Errorf("unknown repair algorithm %q", algoName)
	}
	if req.Parallel {
		opts = append(opts, cleanse.WithParallelRepair(repair.Options{}))
	}
	ecfg := engine.Config{Parallelism: s.cfg.Workers}
	switch req.Backend {
	case "", "local":
	case "net":
		ecfg.Backend = engine.BackendNet
		ecfg.NetWorkers = req.NetWorkers
	default:
		return nil, fmt.Errorf("unknown backend %q (want local or net)", req.Backend)
	}
	// The cleaner builds and owns the context, so closing the session (the
	// end of every stream's life, including the error paths below) shuts
	// the backend down — on "net", that terminates the worker processes.
	opts = append(opts, cleanse.WithEngineConfig(ecfg))
	cleaner, err := cleanse.NewCleaner(nil, ruleSet, opts...)
	if err != nil {
		return nil, err
	}
	sess, err := cleaner.Open(schema)
	if err != nil {
		return nil, err
	}

	st := &stream{
		name:    name,
		schema:  schema,
		session: sess,
		tracer:  tracer,
		planner: planner,
		ops:     make(chan func(), s.cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		sess.Close()
		return nil, errors.New("server is shutting down")
	}
	if _, dup := s.streams[name]; dup {
		sess.Close()
		return nil, fmt.Errorf("session %q already exists", name)
	}
	s.streams[name] = st
	go st.work()
	s.cfg.Logf("session %s: opened (%d rules, incremental=%v)", name, len(ruleSet), sess.Incremental())
	return st, nil
}

func (s *Server) lookup(name string) (*stream, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[name]
	return st, ok
}

// closeStream drains the stream's queue, runs a final flush, closes the
// session, and removes the stream from the registry.
func (s *Server) closeStream(st *stream) (cleanse.Report, error) {
	st.drain()
	rep, err := st.session.Flush()
	st.session.Close()
	st.tracer.Finish()
	s.mu.Lock()
	delete(s.streams, st.name)
	s.mu.Unlock()
	s.cfg.Logf("session %s: closed (flushes=%d)", st.name, rep.Flush)
	return rep, err
}

// Shutdown gracefully stops the server: no new sessions are accepted, every
// session's queue is drained, a final flush runs, and the sessions close.
// It returns early with ctx's error if the context expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	open := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		open = append(open, st)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for _, st := range open {
			wg.Add(1)
			go func(st *stream) {
				defer wg.Done()
				if _, err := s.closeStream(st); err != nil {
					s.cfg.Logf("session %s: final flush: %v", st.name, err)
				}
			}(st)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- HTTP ---

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("POST /sessions/{name}", s.handleCreate)
	mux.HandleFunc("GET /sessions/{name}", s.handleStatus)
	mux.HandleFunc("DELETE /sessions/{name}", s.handleDelete)
	mux.HandleFunc("POST /sessions/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /sessions/{name}/flush", s.handleFlush)
	mux.HandleFunc("GET /sessions/{name}/relation", s.handleRelation)
	mux.HandleFunc("GET /sessions/{name}/explain", s.handleExplain)
	return mux
}

// Serve runs the HTTP API on ln until ctx is cancelled, then shuts the
// listener down and drains every session (the SIGTERM path of the serve
// subcommand). The listener is always closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("draining %d session(s)", len(s.sessionNames()))
	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(stopCtx); err != nil {
		return err
	}
	return s.Shutdown(stopCtx)
}

func (s *Server) sessionNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.streams))
	for n := range s.streams {
		names = append(names, n)
	}
	return names
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.sessionNames()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.open(name, req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":        name,
		"incremental": st.session.Incremental(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	sess := st.session.Status()
	st.mu.Lock()
	queued := len(st.ops)
	lastErr := ""
	if st.lastErr != nil {
		lastErr = st.lastErr.Error()
	}
	st.mu.Unlock()
	writeJSON(w, http.StatusOK, statusJSON{
		Name:           st.name,
		Tuples:         sess.Tuples,
		Ingested:       sess.Ingested,
		Flushes:        sess.Flushes,
		UpdatesApplied: sess.UpdatesApplied,
		FrozenCells:    sess.FrozenCells,
		Incremental:    sess.Incremental,
		Queued:         queued,
		LastError:      lastErr,
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	var req struct {
		Tuples [][]any `json:"tuples"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	batch, err := st.parseBatch(req.Tuples)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	err = st.enqueue(func() {
		if err := st.session.Ingest(batch); err != nil {
			st.noteErr(err)
		}
	})
	switch {
	case errors.Is(err, errBusy):
		writeErr(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeErr(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]int{"queued": len(batch)})
	}
}

// parseBatch converts JSON rows into tuples typed by the session schema.
// IDs are assigned by the session (every tuple is sent with a negative ID).
func (st *stream) parseBatch(rows [][]any) ([]model.Tuple, error) {
	batch := make([]model.Tuple, 0, len(rows))
	for i, row := range rows {
		if len(row) != st.schema.Len() {
			return nil, fmt.Errorf("tuple %d has %d values, schema has %d", i, len(row), st.schema.Len())
		}
		cells := make([]model.Value, len(row))
		for c, v := range row {
			raw, ok := v.(string)
			if !ok {
				raw = fmt.Sprintf("%v", v)
			}
			cells[c] = model.Parse(raw, st.schema.Attr(c).Kind)
		}
		batch = append(batch, model.NewTuple(-1, cells...))
	}
	return batch, nil
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	var rep cleanse.Report
	var ferr error
	if err := st.run(func() { rep, ferr = st.session.Flush() }); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if ferr != nil {
		writeErr(w, http.StatusInternalServerError, ferr)
		return
	}
	writeJSON(w, http.StatusOK, toReportJSON(rep))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	rep, err := s.closeStream(st)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, toReportJSON(rep))
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	rel := st.session.Relation()
	w.Header().Set("Content-Type", "text/csv")
	if err := model.WriteCSV(w, rel, true); err != nil {
		s.cfg.Logf("session %s: relation write: %v", st.name, err)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	// Render on the worker so the span tree is quiescent (no flush or
	// ingest is mutating it mid-print).
	var buf []byte
	var terr error
	err := st.run(func() {
		var sb strings.Builder
		if st.planner != nil {
			sb.WriteString("planner decisions:\n")
			for _, h := range st.planner.History() {
				sb.WriteString(h)
			}
			sb.WriteString("\n")
		}
		terr = trace.WriteTree(&sb, st.tracer)
		buf = []byte(sb.String())
	})
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if terr != nil {
		writeErr(w, http.StatusInternalServerError, terr)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf)
}
