package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"bigdansing/internal/netexec"
)

// TestMain lets this test binary double as a netexec worker: sessions
// created with backend "net" re-exec the binary to spawn their worker
// processes.
func TestMain(m *testing.M) {
	netexec.MaybeWorker()
	os.Exit(m.Run())
}

// TestServeNetBackendSession drives a session on the networked backend end
// to end over HTTP and checks the repair matches what the local backend
// produces — plus that closing the session tears the workers down (the
// enclosing process would otherwise leak two OS children per session).
func TestServeNetBackendSession(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	req := createRequest{
		Schema: taxSchema,
		Rules: []ruleSpec{
			{ID: "phi1", Kind: "fd", Spec: "zipcode -> city"},
		},
		Backend:    "net",
		NetWorkers: 2,
	}
	b, _ := json.Marshal(req)
	code, body := do(t, c, "POST", ts.URL+"/sessions/nettax", string(b))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	all := rows(4, 6, 2)
	bb, _ := json.Marshal(map[string]any{"tuples": all})
	if code, body := do(t, c, "POST", ts.URL+"/sessions/nettax/ingest", string(bb)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}
	code, body = do(t, c, "POST", ts.URL+"/sessions/nettax/flush", "")
	if code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	var rep reportJSON
	json.Unmarshal(body, &rep)
	if rep.InitialViolations == 0 || rep.RemainingViolations != 0 {
		t.Errorf("net-backend flush should repair all FD violations: %+v", rep)
	}
	code, body = do(t, c, "GET", ts.URL+"/sessions/nettax/relation", "")
	if code != http.StatusOK {
		t.Fatalf("relation: %d", code)
	}
	if bytes.Contains(body, []byte("_typo")) {
		t.Error("relation still contains corrupted cities after flush")
	}
	if code, body := do(t, c, "DELETE", ts.URL+"/sessions/nettax", ""); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
}

// TestServeRejectsUnknownBackend pins the validation path.
func TestServeRejectsUnknownBackend(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := createRequest{
		Schema:  taxSchema,
		Rules:   []ruleSpec{{ID: "phi1", Kind: "fd", Spec: "zipcode -> city"}},
		Backend: "mesos",
	}
	b, _ := json.Marshal(req)
	code, body := do(t, ts.Client(), "POST", ts.URL+"/sessions/x", string(b))
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("unknown backend")) {
		t.Fatalf("create with unknown backend: %d %s", code, body)
	}
}
