package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const taxSchema = "name,zipcode:int,city,state,salary:float,rate:float"

func createBody(parallel bool) string {
	req := createRequest{
		Schema: taxSchema,
		Rules: []ruleSpec{
			{ID: "phi1", Kind: "fd", Spec: "zipcode -> city"},
		},
		Parallel: parallel,
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// rows builds g zipcode groups of per tuples each, dirty of them carrying a
// corrupted city — the dirtyTax generator of the cleanse tests, as the
// string rows the HTTP API ingests.
func rows(g, per, dirty int) [][]any {
	var out [][]any
	id := 0
	for z := 0; z < g; z++ {
		city := fmt.Sprintf("City%d", z)
		for i := 0; i < per; i++ {
			c := city
			if i < dirty {
				c = city + "_typo"
			}
			out = append(out, []any{
				fmt.Sprintf("P%d", id), fmt.Sprintf("%d", 10000+z), c, "ST",
				fmt.Sprintf("%d", 1000*id), fmt.Sprintf("%d", id%50),
			})
			id++
		}
	}
	return out
}

func do(t *testing.T, client *http.Client, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeSessionLifecycle drives one session end to end over HTTP:
// create, ingest in batches, flush, inspect status/relation/explain,
// delete.
func TestServeSessionLifecycle(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	code, body := do(t, c, "POST", ts.URL+"/sessions/tax", createBody(true))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var created struct {
		Incremental bool `json:"incremental"`
	}
	json.Unmarshal(body, &created)
	if !created.Incremental {
		t.Error("FD session should be incremental")
	}
	// Creating the same name again fails.
	if code, _ := do(t, c, "POST", ts.URL+"/sessions/tax", createBody(true)); code != http.StatusBadRequest {
		t.Errorf("duplicate create: %d", code)
	}

	all := rows(4, 6, 2)
	for i := 0; i < len(all); i += 6 {
		b, _ := json.Marshal(map[string]any{"tuples": all[i : i+6]})
		code, body := do(t, c, "POST", ts.URL+"/sessions/tax/ingest", string(b))
		if code != http.StatusAccepted {
			t.Fatalf("ingest: %d %s", code, body)
		}
	}

	code, body = do(t, c, "POST", ts.URL+"/sessions/tax/flush", "")
	if code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	var rep reportJSON
	json.Unmarshal(body, &rep)
	if rep.Flush != 1 || rep.Tuples != len(all) {
		t.Errorf("flush report: %+v", rep)
	}
	if rep.InitialViolations == 0 || rep.RemainingViolations != 0 {
		t.Errorf("flush should repair all FD violations: %+v", rep)
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/tax", "")
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	var st statusJSON
	json.Unmarshal(body, &st)
	if st.Flushes != 1 || st.Ingested != int64(len(all)) || st.LastError != "" {
		t.Errorf("status: %+v", st)
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/tax/relation", "")
	if code != http.StatusOK {
		t.Fatalf("relation: %d", code)
	}
	if bytes.Contains(body, []byte("_typo")) {
		t.Error("relation still contains corrupted cities after flush")
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/tax/explain", "")
	if code != http.StatusOK {
		t.Fatalf("explain: %d", code)
	}
	for _, want := range []string{"run", "round 1"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}

	code, body = do(t, c, "DELETE", ts.URL+"/sessions/tax", "")
	if code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, _ := do(t, c, "GET", ts.URL+"/sessions/tax", ""); code != http.StatusNotFound {
		t.Errorf("status after delete: %d", code)
	}
}

// TestServeConcurrentSessions runs 4 sessions in parallel, each streaming
// its own batches and flushing — the acceptance bar for the service. Run
// under -race this also checks the queue/session paths.
func TestServeConcurrentSessions(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := ts.Client()
			name := fmt.Sprintf("s%d", n)
			if code, b := do(t, c, "POST", ts.URL+"/sessions/"+name, createBody(n%2 == 0)); code != http.StatusCreated {
				errs <- fmt.Errorf("%s create: %d %s", name, code, b)
				return
			}
			all := rows(3, 6, 2)
			for i := 0; i < len(all); i += 6 {
				b, _ := json.Marshal(map[string]any{"tuples": all[i : i+6]})
				for {
					code, body := do(t, c, "POST", ts.URL+"/sessions/"+name+"/ingest", string(b))
					if code == http.StatusAccepted {
						break
					}
					if code != http.StatusTooManyRequests {
						errs <- fmt.Errorf("%s ingest: %d %s", name, code, body)
						return
					}
					time.Sleep(time.Millisecond) // backpressure: retry
				}
				if i%12 == 6 {
					if code, b := do(t, c, "POST", ts.URL+"/sessions/"+name+"/flush", ""); code != http.StatusOK {
						errs <- fmt.Errorf("%s flush: %d %s", name, code, b)
						return
					}
				}
			}
			code, body := do(t, c, "POST", ts.URL+"/sessions/"+name+"/flush", "")
			if code != http.StatusOK {
				errs <- fmt.Errorf("%s final flush: %d %s", name, code, body)
				return
			}
			var rep reportJSON
			json.Unmarshal(body, &rep)
			if rep.RemainingViolations != 0 || rep.Tuples != len(all) {
				errs <- fmt.Errorf("%s: unclean final report %+v", name, rep)
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeBackpressure fills the queue beyond its depth with a worker
// stalled behind a slow flush-equivalent; overflow must be rejected with
// 429, not buffered or blocked.
func TestServeBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	if code, b := do(t, c, "POST", ts.URL+"/sessions/bp", createBody(false)); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}
	st, _ := srv.lookup("bp")
	// Stall the worker so queued ops cannot drain.
	release := make(chan struct{})
	if err := st.enqueue(func() { <-release }); err != nil {
		t.Fatal(err)
	}

	b, _ := json.Marshal(map[string]any{"tuples": rows(1, 2, 1)})
	got429 := false
	for i := 0; i < 4; i++ {
		code, body := do(t, c, "POST", ts.URL+"/sessions/bp/ingest", string(b))
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("ingest %d: %d %s", i, code, body)
		}
	}
	if !got429 {
		t.Error("overflowing the queue never returned 429")
	}
	close(release)

	// Once the worker drains, ingest works again and flush sees the data.
	code, body := do(t, c, "POST", ts.URL+"/sessions/bp/flush", "")
	if code != http.StatusOK {
		t.Fatalf("flush after drain: %d %s", code, body)
	}
	var rep reportJSON
	json.Unmarshal(body, &rep)
	if rep.Tuples == 0 {
		t.Errorf("queued batches were lost: %+v", rep)
	}
}

// TestServeGracefulShutdown cancels Serve's context (the SIGTERM path) with
// batches still queued: the drain must process them, final-flush every
// session, and only then return.
func TestServeGracefulShutdown(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 32})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	c := &http.Client{}
	if code, b := do(t, c, "POST", base+"/sessions/drainme", createBody(true)); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}
	st, _ := srv.lookup("drainme")
	all := rows(3, 5, 2)
	b, _ := json.Marshal(map[string]any{"tuples": all})
	if code, body := do(t, c, "POST", base+"/sessions/drainme/ingest", string(b)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}

	cancel() // SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain in time")
	}

	// The queued batch must have been ingested, flushed and repaired.
	status := st.session.Status()
	if !status.Closed {
		t.Error("session not closed after drain")
	}
	if status.Ingested != int64(len(all)) {
		t.Errorf("drain lost tuples: ingested %d of %d", status.Ingested, len(all))
	}
	if status.Flushes == 0 {
		t.Error("no final flush ran during drain")
	}
	for _, tp := range st.session.Relation().Tuples {
		if strings.Contains(tp.Cell(2).String(), "_typo") {
			t.Errorf("tuple %d not repaired during drain", tp.ID)
		}
	}
}

// TestServeCreateValidation: bad schema, bad rules, bad algorithm and bad
// options are rejected at session creation with 400.
func TestServeCreateValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	for name, body := range map[string]string{
		"empty-schema": `{"schema":"","rules":[{"kind":"fd","spec":"a -> b"}]}`,
		"bad-kind":     `{"schema":"a,b","rules":[{"kind":"nope","spec":"a -> b"}]}`,
		"bad-fd":       `{"schema":"a,b","rules":[{"kind":"fd","spec":"a -> missing"}]}`,
		"no-rules":     `{"schema":"a,b","rules":[]}`,
		"bad-algo":     `{"schema":"a,b","rules":[{"kind":"fd","spec":"a -> b"}],"algorithm":"magic"}`,
		"bad-iter":     `{"schema":"a,b","rules":[{"kind":"fd","spec":"a -> b"}],"maxIterations":-1}`,
	} {
		if code, b := do(t, c, "POST", ts.URL+"/sessions/"+name, body); code != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, code, b)
		}
	}
	// Nothing should have been registered.
	if names := srv.sessionNames(); len(names) != 0 {
		t.Errorf("failed creates leaked sessions: %v", names)
	}

	// Unknown session on every per-session route.
	for _, route := range []struct{ method, path string }{
		{"GET", "/sessions/ghost"},
		{"DELETE", "/sessions/ghost"},
		{"POST", "/sessions/ghost/ingest"},
		{"POST", "/sessions/ghost/flush"},
		{"GET", "/sessions/ghost/relation"},
		{"GET", "/sessions/ghost/explain"},
	} {
		if code, _ := do(t, c, route.method, ts.URL+route.path, "{}"); code != http.StatusNotFound {
			t.Errorf("%s %s: %d", route.method, route.path, code)
		}
	}
}

// TestServeProbSession drives a session with the probabilistic repair
// backend through the HTTP API: the "repair" alias, the seed and the sample
// budget all arrive at the algorithm, the flush repairs the FD violations,
// and the explain tree shows the prob spans.
func TestServeProbSession(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	req := createRequest{
		Schema: taxSchema,
		Rules: []ruleSpec{
			{ID: "phi1", Kind: "fd", Spec: "zipcode -> city"},
		},
		Repair:      "prob",
		Seed:        7,
		ProbSamples: 64,
		Parallel:    true,
	}
	b, _ := json.Marshal(req)
	code, body := do(t, c, "POST", ts.URL+"/sessions/prob", string(b))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	all := rows(4, 6, 2)
	rb, _ := json.Marshal(map[string]any{"tuples": all})
	if code, body := do(t, c, "POST", ts.URL+"/sessions/prob/ingest", string(rb)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}
	code, body = do(t, c, "POST", ts.URL+"/sessions/prob/flush", "")
	if code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	var rep reportJSON
	json.Unmarshal(body, &rep)
	if rep.InitialViolations == 0 || rep.RemainingViolations != 0 {
		t.Errorf("prob flush should repair all FD violations: %+v", rep)
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/prob/relation", "")
	if code != http.StatusOK {
		t.Fatalf("relation: %d", code)
	}
	if bytes.Contains(body, []byte("_typo")) {
		t.Error("relation still contains corrupted cities after prob flush")
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/prob/explain", "")
	if code != http.StatusOK {
		t.Fatalf("explain: %d", code)
	}
	for _, want := range []string{"prob:learn", "prob:infer"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}
}

// TestServeCostPlannerSession creates a session with "planner":"cost",
// flushes, and checks the explain audit includes planner decisions.
func TestServeCostPlannerSession(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	req := createRequest{
		Schema: taxSchema,
		Rules: []ruleSpec{
			{ID: "phi1", Kind: "fd", Spec: "zipcode -> city"},
		},
		Planner: "cost",
	}
	b, _ := json.Marshal(req)
	code, body := do(t, c, "POST", ts.URL+"/sessions/cp", string(b))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	all := rows(4, 6, 2)
	rb, _ := json.Marshal(map[string]any{"tuples": all})
	if code, body := do(t, c, "POST", ts.URL+"/sessions/cp/ingest", string(rb)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}
	code, body = do(t, c, "POST", ts.URL+"/sessions/cp/flush", "")
	if code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	var rep reportJSON
	json.Unmarshal(body, &rep)
	if rep.InitialViolations == 0 || rep.RemainingViolations != 0 {
		t.Errorf("cost-planned flush should still repair: %+v", rep)
	}

	code, body = do(t, c, "GET", ts.URL+"/sessions/cp/explain", "")
	if code != http.StatusOK {
		t.Fatalf("explain: %d", code)
	}
	if !bytes.Contains(body, []byte("planner decisions:")) {
		t.Errorf("explain should include planner audit:\n%s", body)
	}

	// Unknown planner is rejected at create.
	req.Planner = "bogus"
	b, _ = json.Marshal(req)
	if code, body := do(t, c, "POST", ts.URL+"/sessions/bad", string(b)); code != http.StatusBadRequest {
		t.Errorf("bogus planner create: %d %s", code, body)
	}
}
