// Package simfn provides the string similarity functions BigDansing's
// UDF-based rules use: the deduplication rules φ4/φ5 of the evaluation use
// Levenshtein distance, and rule φU of Example 1 needs a generic simF.
package simfn

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// costs) between a and b, computed over runes with a two-row DP.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity normalizes the edit distance into [0,1]:
// 1 means identical, 0 means maximally different.
func LevenshteinSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	maxLen := len([]rune(a))
	if l := len([]rune(b)); l > maxLen {
		maxLen = l
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// JaroWinkler returns the Jaro-Winkler similarity in [0,1] with the standard
// 0.1 prefix scale over at most 4 common prefix runes.
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(ra))
	bMatch := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || ra[i] != rb[j] {
				continue
			}
			aMatch[i], bMatch[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(transpositions)/2)/m) / 3
}

// NGramJaccard returns the Jaccard similarity of the n-gram sets of a and b
// (n >= 1). Strings shorter than n are treated as one gram.
func NGramJaccard(a, b string, n int) float64 {
	ga, gb := ngrams(a, n), ngrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func ngrams(s string, n int) map[string]bool {
	if n < 1 {
		n = 1
	}
	r := []rune(s)
	out := make(map[string]bool)
	if len(r) == 0 {
		return out
	}
	if len(r) <= n {
		out[string(r)] = true
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = true
	}
	return out
}

// Soundex returns the 4-character American Soundex code of s, the classic
// phonetic blocking key for deduplication. Non-letters are ignored; an empty
// input yields "0000".
func Soundex(s string) string {
	code := func(r rune) byte {
		switch unicode.ToUpper(r) {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		default:
			return 0 // vowels, H, W, Y and non-letters
		}
	}
	var letters []rune
	for _, r := range s {
		if unicode.IsLetter(r) {
			letters = append(letters, r)
		}
	}
	if len(letters) == 0 {
		return "0000"
	}
	var b strings.Builder
	b.WriteRune(unicode.ToUpper(letters[0]))
	last := code(letters[0])
	for _, r := range letters[1:] {
		c := code(r)
		if c != 0 && c != last {
			b.WriteByte(c)
			if b.Len() == 4 {
				break
			}
		}
		// H and W do not reset the previous code; vowels do.
		up := unicode.ToUpper(r)
		if up != 'H' && up != 'W' {
			last = c
		}
	}
	for b.Len() < 4 {
		b.WriteByte('0')
	}
	return b.String()
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
