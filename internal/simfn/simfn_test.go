package simfn

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	clamp := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	// Symmetry and identity.
	f := func(a, b string) bool {
		a, b = clamp(a), clamp(b)
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	g := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	if LevenshteinSimilarity("", "") != 1 {
		t.Error("empty strings identical")
	}
	if LevenshteinSimilarity("abc", "abc") != 1 {
		t.Error("equal strings similarity 1")
	}
	if s := LevenshteinSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint same-length strings = %v, want 0", s)
	}
	f := func(a, b string) bool {
		if len(a) > 10 {
			a = a[:10]
		}
		if len(b) > 10 {
			b = b[:10]
		}
		s := LevenshteinSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if JaroWinkler("", "") != 1 {
		t.Error("empty identical")
	}
	if JaroWinkler("abc", "abc") != 1 {
		t.Error("equal strings")
	}
	if JaroWinkler("abc", "") != 0 {
		t.Error("one empty")
	}
	// MARTHA/MARHTA is the textbook example: ~0.961.
	got := JaroWinkler("MARTHA", "MARHTA")
	if got < 0.95 || got > 0.97 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v", got)
	}
	// Prefix boost: DWAYNE/DUANE ~0.84.
	got = JaroWinkler("DWAYNE", "DUANE")
	if got < 0.82 || got > 0.86 {
		t.Errorf("JaroWinkler(DWAYNE,DUANE) = %v", got)
	}
}

func TestNGramJaccard(t *testing.T) {
	if NGramJaccard("night", "night", 2) != 1 {
		t.Error("identical strings")
	}
	if NGramJaccard("", "", 2) != 1 {
		t.Error("both empty")
	}
	if got := NGramJaccard("abcd", "wxyz", 2); got != 0 {
		t.Errorf("disjoint bigrams = %v", got)
	}
	a := NGramJaccard("nacht", "night", 2)
	if a <= 0 || a >= 1 {
		t.Errorf("partial overlap should be in (0,1): %v", a)
	}
}

func TestSoundexKnownCodes(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261",
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"":         "0000",
		"123":      "0000",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexBlocksSimilarNames(t *testing.T) {
	// The dedup blocking strategy relies on typo'd names often sharing a
	// Soundex code.
	pairs := [][2]string{{"Smith", "Smyth"}, {"Johnson", "Jonson"}, {"Williams", "Wiliams"}}
	for _, p := range pairs {
		if Soundex(p[0]) != Soundex(p[1]) {
			t.Errorf("Soundex(%q) != Soundex(%q)", p[0], p[1])
		}
	}
}
