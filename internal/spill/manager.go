// Package spill is the out-of-core substrate of the engine: a memory-budget
// manager that wide-operator tasks reserve working memory from, and
// crc-checked, length-prefixed run files under a temp directory that those
// tasks spill sorted (or partitioned) record runs to when the budget is
// exhausted. The paper's evaluation runs datasets far beyond RAM on Spark's
// external shuffle; this package plays that role for the in-process engine.
//
// The package is deliberately byte-oriented: records are opaque []byte
// produced by the engine's codecs, so spill knows nothing about values,
// tuples or keys and sits below every data-model layer.
package spill

import "sync/atomic"

// Manager arbitrates a fixed memory budget between concurrent tasks.
// Reservations are advisory bookkeeping, not allocations: a task reserves
// before buffering records and spills (then releases) when a reservation is
// refused. The peak of reserved bytes is tracked and never exceeds the
// budget, which is the invariant the out-of-core tests assert.
//
// A nil *Manager is valid and means "unbounded": every reservation
// succeeds and nothing is tracked, so engine code can thread one pointer
// unconditionally.
type Manager struct {
	budget   int64
	reserved atomic.Int64
	peak     atomic.Int64
}

// NewManager creates a manager with the given budget in bytes.
// Non-positive budgets return nil, the unbounded manager.
func NewManager(budget int64) *Manager {
	if budget <= 0 {
		return nil
	}
	return &Manager{budget: budget}
}

// Budget returns the configured budget in bytes (0 when unbounded).
func (m *Manager) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// TryReserve attempts to reserve n bytes. It fails (returning false,
// reserving nothing) when the reservation would push the total over the
// budget — the signal for the caller to spill its buffer and release.
func (m *Manager) TryReserve(n int64) bool {
	if m == nil || n <= 0 {
		return true
	}
	for {
		cur := m.reserved.Load()
		if cur+n > m.budget {
			return false
		}
		if m.reserved.CompareAndSwap(cur, cur+n) {
			m.notePeak(cur + n)
			return true
		}
	}
}

// Release returns n reserved bytes to the budget.
func (m *Manager) Release(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.reserved.Add(-n)
}

// Reserved returns the bytes currently reserved.
func (m *Manager) Reserved() int64 {
	if m == nil {
		return 0
	}
	return m.reserved.Load()
}

// Peak returns the high-water mark of reserved bytes over the manager's
// lifetime. By construction it never exceeds Budget().
func (m *Manager) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// notePeak raises the high-water mark to at least v.
func (m *Manager) notePeak(v int64) {
	for {
		p := m.peak.Load()
		if v <= p || m.peak.CompareAndSwap(p, v) {
			return
		}
	}
}
