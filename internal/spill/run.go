package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// frameTarget is the payload size a Writer accumulates before sealing a
// frame; one frame is the unit of checksumming and of buffered I/O.
const frameTarget = 256 << 10

// maxFrame bounds the payload a Reader will accept, so a corrupt length
// header cannot trigger an absurd allocation. Writers seal frames at
// frameTarget but a single record larger than that still forms one frame.
const maxFrame = 1 << 30

// Dir is a lazily created temporary directory holding the run files of one
// spilling operator. Nothing touches the filesystem until the first run is
// created, so operators that stay within budget never pay for a mkdir.
// Cleanup removes the directory and every run in it; operators defer it
// unconditionally so run files are released on error and panic paths too.
type Dir struct {
	base   string
	prefix string

	mu      sync.Mutex
	path    string
	nextRun int
}

// NewDir prepares a lazy spill directory under base (os.TempDir() when
// empty); prefix names the operator for diagnosability of leftovers.
func NewDir(base, prefix string) *Dir {
	if base == "" {
		base = os.TempDir()
	}
	return &Dir{base: base, prefix: prefix}
}

// Path returns the created directory, or "" if nothing spilled yet.
func (d *Dir) Path() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.path
}

// Cleanup removes the directory and all runs in it. Safe to call when
// nothing was ever spilled, and idempotent.
func (d *Dir) Cleanup() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.path == "" {
		return nil
	}
	p := d.path
	d.path = ""
	return os.RemoveAll(p)
}

// NewRun opens a new run file for writing. Safe for concurrent use by
// parallel tasks.
func (d *Dir) NewRun() (*Writer, error) {
	d.mu.Lock()
	if d.path == "" {
		if err := os.MkdirAll(d.base, 0o700); err != nil {
			d.mu.Unlock()
			return nil, fmt.Errorf("spill: create base dir: %w", err)
		}
		p, err := os.MkdirTemp(d.base, "bigdansing-spill-"+d.prefix+"-")
		if err != nil {
			d.mu.Unlock()
			return nil, fmt.Errorf("spill: create dir: %w", err)
		}
		d.path = p
	}
	n := d.nextRun
	d.nextRun++
	path := filepath.Join(d.path, fmt.Sprintf("run-%06d", n))
	d.mu.Unlock()

	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create run: %w", err)
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Writer streams records into a run file as crc-checked frames:
//
//	frame  := payloadLen:uint32le crc32:uint32le payload
//	payload:= (recLen:uvarint recBytes)*
//
// Append buffers records into the current frame and seals it past
// frameTarget; Finish seals the tail frame and closes the file.
type Writer struct {
	f       *os.File
	bw      *bufio.Writer
	frame   []byte
	records int64
	bytes   int64
	err     error
}

// Append adds one record to the run. The record bytes are copied; the
// caller may reuse rec immediately.
func (w *Writer) Append(rec []byte) error {
	if w.err != nil {
		return w.err
	}
	w.frame = binary.AppendUvarint(w.frame, uint64(len(rec)))
	w.frame = append(w.frame, rec...)
	w.records++
	if len(w.frame) >= frameTarget {
		return w.sealFrame()
	}
	return nil
}

// sealFrame writes the buffered payload as one checksummed frame.
func (w *Writer) sealFrame() error {
	if len(w.frame) == 0 {
		return w.err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(w.frame)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(w.frame))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(w.frame); err != nil {
		w.err = err
		return err
	}
	w.bytes += int64(len(hdr)) + int64(len(w.frame))
	w.frame = w.frame[:0]
	return nil
}

// Finish seals the final frame, flushes and closes the file, and returns
// the completed Run. The writer is unusable afterwards.
func (w *Writer) Finish() (*Run, error) {
	if err := w.sealFrame(); err != nil {
		w.abort()
		return nil, fmt.Errorf("spill: write run: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return nil, fmt.Errorf("spill: flush run: %w", err)
	}
	path := w.f.Name()
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("spill: close run: %w", err)
	}
	return &Run{Path: path, Records: w.records, Bytes: w.bytes}, nil
}

// Abort discards the run: closes and removes the file. Used on error
// paths; the directory Cleanup would catch the file anyway, but aborting
// eagerly keeps disk usage bounded inside one operator.
func (w *Writer) Abort() { w.abort() }

func (w *Writer) abort() {
	if w.f != nil {
		name := w.f.Name()
		w.f.Close()
		os.Remove(name)
		w.f = nil
	}
}

// Run is a completed, immutable spill file.
type Run struct {
	Path    string
	Records int64
	Bytes   int64
}

// Open returns a Reader positioned at the first record.
func (r *Run) Open() (*Reader, error) {
	f, err := os.Open(r.Path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	return &Reader{f: f, br: bufio.NewReaderSize(f, 64<<10)}, nil
}

// Reader iterates the records of a run, verifying each frame's checksum.
type Reader struct {
	f     *os.File
	br    *bufio.Reader
	frame []byte
	pos   int
}

// Next returns the next record, or io.EOF after the last one. The returned
// slice aliases the reader's frame buffer and is valid only until the next
// call to Next.
func (r *Reader) Next() ([]byte, error) {
	for r.pos >= len(r.frame) {
		if err := r.readFrame(); err != nil {
			return nil, err
		}
	}
	n, sz := binary.Uvarint(r.frame[r.pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("spill: %s: corrupt record length", r.f.Name())
	}
	r.pos += sz
	if r.pos+int(n) > len(r.frame) {
		return nil, fmt.Errorf("spill: %s: record overruns frame", r.f.Name())
	}
	rec := r.frame[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return rec, nil
}

// readFrame loads and verifies the next frame.
func (r *Reader) readFrame() error {
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("spill: %s: read frame header: %w", r.f.Name(), err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("spill: %s: implausible frame length %d", r.f.Name(), n)
	}
	if cap(r.frame) < int(n) {
		r.frame = make([]byte, n)
	}
	r.frame = r.frame[:n]
	if _, err := io.ReadFull(r.br, r.frame); err != nil {
		return fmt.Errorf("spill: %s: read frame payload: %w", r.f.Name(), err)
	}
	if got := crc32.ChecksumIEEE(r.frame); got != want {
		return fmt.Errorf("spill: %s: frame checksum mismatch (got %08x want %08x)", r.f.Name(), got, want)
	}
	r.pos = 0
	return nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
