package spill

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestManagerBudgetInvariant(t *testing.T) {
	m := NewManager(1000)
	if !m.TryReserve(600) {
		t.Fatal("first reservation should fit")
	}
	if m.TryReserve(500) {
		t.Fatal("overcommit should be refused")
	}
	if !m.TryReserve(400) {
		t.Fatal("exact fit should succeed")
	}
	if m.Reserved() != 1000 || m.Peak() != 1000 {
		t.Fatalf("reserved=%d peak=%d", m.Reserved(), m.Peak())
	}
	m.Release(1000)
	if m.Reserved() != 0 {
		t.Fatalf("reserved=%d after release", m.Reserved())
	}
	if m.Peak() != 1000 {
		t.Fatalf("peak should persist: %d", m.Peak())
	}
}

func TestManagerConcurrentNeverExceedsBudget(t *testing.T) {
	const budget = 1 << 20
	m := NewManager(budget)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			held := int64(0)
			for i := 0; i < 5000; i++ {
				n := int64(r.Intn(4096) + 1)
				if m.TryReserve(n) {
					held += n
				} else if held > 0 {
					m.Release(held)
					held = 0
				}
			}
			m.Release(held)
		}(int64(w))
	}
	wg.Wait()
	if m.Reserved() != 0 {
		t.Fatalf("leaked reservation: %d", m.Reserved())
	}
	if p := m.Peak(); p > budget {
		t.Fatalf("peak %d exceeds budget %d", p, budget)
	}
}

func TestNilManagerIsUnbounded(t *testing.T) {
	var m *Manager
	if !m.TryReserve(1 << 40) {
		t.Fatal("nil manager must accept everything")
	}
	m.Release(1 << 40)
	if m.Budget() != 0 || m.Peak() != 0 || m.Reserved() != 0 {
		t.Fatal("nil manager must report zeros")
	}
}

func TestRunRoundTrip(t *testing.T) {
	d := NewDir(t.TempDir(), "test")
	defer d.Cleanup()
	if d.Path() != "" {
		t.Fatal("dir must be lazy")
	}
	w, err := d.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	var want [][]byte
	for i := 0; i < 2000; i++ {
		rec := make([]byte, r.Intn(700)) // spans several frames incl empty records
		r.Read(rec)
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Records != 2000 {
		t.Fatalf("records = %d", run.Records)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i, wrec := range want {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, wrec) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	d := NewDir(t.TempDir(), "corrupt")
	defer d.Cleanup()
	w, err := d.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(run.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // flip a payload bit
	if err := os.WriteFile(run.Path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for {
		if _, err := rd.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("corruption not detected")
			}
			return // checksum error, as intended
		}
	}
}

func TestDirCleanupRemovesRuns(t *testing.T) {
	base := t.TempDir()
	d := NewDir(base, "cleanup")
	for i := 0; i < 3; i++ {
		w, err := d.NewRun()
		if err != nil {
			t.Fatal(err)
		}
		w.Append([]byte("x"))
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	path := d.Path()
	if path == "" {
		t.Fatal("dir should exist after spilling")
	}
	if err := d.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill dir should be gone: %v", err)
	}
	left, _ := filepath.Glob(filepath.Join(base, "*"))
	if len(left) != 0 {
		t.Fatalf("leftover files: %v", left)
	}
	if err := d.Cleanup(); err != nil {
		t.Fatal("cleanup must be idempotent")
	}
}
