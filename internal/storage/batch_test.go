package storage

import (
	"testing"

	"bigdansing/internal/model"
)

func TestReadBatchesMatchesRead(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rel := sampleRel(60)
	if _, err := st.Upload(rel, "zipcode", 5); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []ReadOptions{
		{Partition: -1},
		{Partition: 2},
		{Partition: -1, Columns: []string{"zipcode", "city"}},
	} {
		want, err := st.Read("tax", "zipcode", opts)
		if err != nil {
			t.Fatal(err)
		}
		batches, schema, err := st.ReadBatches("tax", "zipcode", opts)
		if err != nil {
			t.Fatal(err)
		}
		if schema.String() != want.Schema.String() {
			t.Fatalf("opts %+v: schema %s, want %s", opts, schema, want.Schema)
		}
		var got []model.Tuple
		for _, b := range batches {
			if b.Len() == 0 {
				t.Fatal("ReadBatches must skip empty partitions")
			}
			if len(b.Cols) != schema.Len() {
				t.Fatalf("batch has %d columns, schema %d", len(b.Cols), schema.Len())
			}
			got = b.AppendTuples(got)
		}
		if len(got) != want.Len() {
			t.Fatalf("opts %+v: %d rows, want %d", opts, len(got), want.Len())
		}
		for i, w := range want.Tuples {
			if got[i].ID != w.ID {
				t.Fatalf("opts %+v row %d: id %d, want %d (order must match Read)", opts, i, got[i].ID, w.ID)
			}
			for c := 0; c < schema.Len(); c++ {
				if !got[i].Cell(c).Equal(w.Cell(c)) {
					t.Fatalf("opts %+v row %d col %d: value mismatch", opts, i, c)
				}
			}
		}
	}
}

func TestReadBatchesBlockKeyPushdown(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rel := sampleRel(40)
	if _, err := st.Upload(rel, "zipcode", 4); err != nil {
		t.Fatal(err)
	}
	key := model.I(10003)
	want, err := st.Read("tax", "zipcode", ReadOptions{Partition: -1, BlockKey: &key})
	if err != nil {
		t.Fatal(err)
	}
	batches, _, err := st.ReadBatches("tax", "zipcode", ReadOptions{Partition: -1, BlockKey: &key})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, b := range batches {
		rows += b.Len()
	}
	if rows != want.Len() {
		t.Fatalf("block-key read: %d rows, want %d", rows, want.Len())
	}
}
