// Package storage implements BigDansing's data storage manager
// (Appendix F), a stand-in for the Cartilage/HDFS layer: datasets are
// stored in a binary, column-oriented layout, logically partitioned by the
// content of a chosen attribute, and optionally replicated with different
// partitioning attributes. An upload plan (the dataset's metadata) is
// persisted alongside so readers know which layout and partitioning each
// replica carries, enabling two pushdowns:
//
//	Scope pushdown: read only the requested columns;
//	Block pushdown: read only the partitions whose key matches, or iterate
//	  partition-by-partition so blocking needs no shuffle.
package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bigdansing/internal/model"
)

// UploadPlan is the persisted metadata of one stored dataset replica.
type UploadPlan struct {
	// Name is the dataset name.
	Name string `json:"name"`
	// Schema in MustParseSchema notation.
	Schema string `json:"schema"`
	// PartitionAttr is the attribute whose value hash places a tuple in a
	// partition; empty means round-robin (size-based, like plain HDFS).
	PartitionAttr string `json:"partition_attr,omitempty"`
	// Partitions is the partition count.
	Partitions int `json:"partitions"`
	// Rows is the total tuple count.
	Rows int `json:"rows"`
}

// Store manages dataset replicas under a root directory.
type Store struct {
	root string
}

// Open creates or opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// replicaDir names the directory of one replica: <name>/<partAttr or rr>.
func (s *Store) replicaDir(name, partAttr string) string {
	suffix := partAttr
	if suffix == "" {
		suffix = "_rr"
	}
	return filepath.Join(s.root, name, suffix)
}

// Upload writes a replica of rel partitioned on partAttr ("" = round-robin)
// into nParts partitions, in columnar binary layout: one file per
// (partition, column) plus an id file per partition and the upload plan.
func (s *Store) Upload(rel *model.Relation, partAttr string, nParts int) (*UploadPlan, error) {
	if nParts <= 0 {
		nParts = 4
	}
	partCol := -1
	if partAttr != "" {
		c, ok := rel.Schema.Index(partAttr)
		if !ok {
			return nil, fmt.Errorf("storage: unknown partition attribute %q", partAttr)
		}
		partCol = c
	}
	dir := s.replicaDir(rel.Name, partAttr)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	// Assign tuples to partitions.
	parts := make([][]model.Tuple, nParts)
	for i, t := range rel.Tuples {
		p := i % nParts
		if partCol >= 0 {
			p = int(t.Cell(partCol).Hash() % uint64(nParts))
		}
		parts[p] = append(parts[p], t)
	}

	// Write columnar files.
	for p, tuples := range parts {
		// IDs.
		var idBuf []byte
		for _, t := range tuples {
			idBuf = appendUvarint(idBuf, uint64(t.ID))
		}
		if err := os.WriteFile(partFile(dir, p, -1), idBuf, 0o644); err != nil {
			return nil, err
		}
		// One file per column.
		for c := 0; c < rel.Schema.Len(); c++ {
			var buf []byte
			for _, t := range tuples {
				buf = model.AppendValue(buf, t.Cell(c))
			}
			if err := os.WriteFile(partFile(dir, p, c), buf, 0o644); err != nil {
				return nil, err
			}
		}
	}

	plan := &UploadPlan{
		Name:          rel.Name,
		Schema:        rel.Schema.String(),
		PartitionAttr: partAttr,
		Partitions:    nParts,
		Rows:          rel.Len(),
	}
	pj, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "plan.json"), pj, 0o644); err != nil {
		return nil, err
	}
	return plan, nil
}

// Datasets lists the dataset names in the store, sorted.
func (s *Store) Datasets() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("storage: list datasets: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeleteReplica removes one replica of a dataset; deleting the last replica
// removes the dataset directory too.
func (s *Store) DeleteReplica(name, partAttr string) error {
	dir := s.replicaDir(name, partAttr)
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("storage: replica %s/%s: %w", name, partAttr, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	// Drop the dataset directory when empty.
	parent := filepath.Join(s.root, name)
	if entries, err := os.ReadDir(parent); err == nil && len(entries) == 0 {
		return os.Remove(parent)
	}
	return nil
}

// DeleteDataset removes a dataset and all its replicas.
func (s *Store) DeleteDataset(name string) error {
	dir := filepath.Join(s.root, name)
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("storage: dataset %s: %w", name, err)
	}
	return os.RemoveAll(dir)
}

// Replicas lists the partitioning attributes of the stored replicas of a
// dataset (empty string denotes the round-robin replica).
func (s *Store) Replicas(name string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, name))
	if err != nil {
		return nil, fmt.Errorf("storage: dataset %q: %w", name, err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if e.Name() == "_rr" {
			out = append(out, "")
		} else {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Plan reads the upload plan of a replica.
func (s *Store) Plan(name, partAttr string) (*UploadPlan, error) {
	raw, err := os.ReadFile(filepath.Join(s.replicaDir(name, partAttr), "plan.json"))
	if err != nil {
		return nil, fmt.Errorf("storage: plan for %s/%s: %w", name, partAttr, err)
	}
	var plan UploadPlan
	if err := json.Unmarshal(raw, &plan); err != nil {
		return nil, fmt.Errorf("storage: plan for %s/%s: %w", name, partAttr, err)
	}
	return &plan, nil
}

// ReadOptions select what Read materializes, implementing the pushdowns.
type ReadOptions struct {
	// Columns restricts the read to these attributes (the Scope pushdown);
	// nil reads every column. Projected tuples keep their original IDs and
	// the returned schema covers only the requested columns.
	Columns []string
	// Partition restricts the read to one partition index (>=0), used by
	// executors that process partitions independently; -1 reads all.
	Partition int
	// BlockKey, with a content-partitioned replica, reads only the
	// partition that can contain the given partition-attribute value (the
	// Block pushdown). The value is hashed exactly like the partitioner at
	// upload time (Value.Hash), so no string key is rendered on either
	// side. Nil disables it.
	BlockKey *model.Value
}

// Read materializes (part of) a replica according to opts as a row-major
// relation: the columnar files are read once (ReadBatches) and the rows
// assembled from them.
func (s *Store) Read(name, partAttr string, opts ReadOptions) (*model.Relation, error) {
	batches, outSchema, err := s.ReadBatches(name, partAttr, opts)
	if err != nil {
		return nil, err
	}
	rel := model.NewRelation(name, outSchema)
	for _, b := range batches {
		rel.Tuples = b.AppendTuples(rel.Tuples)
	}
	return rel, nil
}

// ReadBatches reads (part of) a replica according to opts straight into
// column batches — one fully-live batch per stored partition, wrapping the
// decoded column vectors without a row-major copy. This is the zero-copy
// feed for vectorized execution: the stored layout is already columnar, so
// the batch path never materializes tuples at read time (rows surface only
// via Batch.TupleAt / AppendTuples). Column and partition selection match
// Read exactly; the returned schema covers the selected columns.
func (s *Store) ReadBatches(name, partAttr string, opts ReadOptions) ([]*model.Batch, *model.Schema, error) {
	plan, err := s.Plan(name, partAttr)
	if err != nil {
		return nil, nil, err
	}
	schema := model.MustParseSchema(plan.Schema)
	dir := s.replicaDir(name, partAttr)

	cols := make([]int, 0, schema.Len())
	outSchema := schema
	if opts.Columns != nil {
		for _, cn := range opts.Columns {
			c, ok := schema.Index(cn)
			if !ok {
				return nil, nil, fmt.Errorf("storage: unknown column %q", cn)
			}
			cols = append(cols, c)
		}
		outSchema = schema.Project(cols)
	} else {
		for c := 0; c < schema.Len(); c++ {
			cols = append(cols, c)
		}
	}

	partsToRead := make([]int, 0, plan.Partitions)
	switch {
	case opts.BlockKey != nil:
		if plan.PartitionAttr == "" {
			return nil, nil, fmt.Errorf("storage: block pushdown needs a content-partitioned replica")
		}
		partsToRead = append(partsToRead, int(opts.BlockKey.Hash()%uint64(plan.Partitions)))
	case opts.Partition >= 0:
		if opts.Partition >= plan.Partitions {
			return nil, nil, fmt.Errorf("storage: partition %d out of range (%d)", opts.Partition, plan.Partitions)
		}
		partsToRead = append(partsToRead, opts.Partition)
	default:
		for p := 0; p < plan.Partitions; p++ {
			partsToRead = append(partsToRead, p)
		}
	}

	batches := make([]*model.Batch, 0, len(partsToRead))
	for _, p := range partsToRead {
		ids, err := readIDs(partFile(dir, p, -1))
		if err != nil {
			return nil, nil, err
		}
		if len(ids) == 0 {
			continue
		}
		colVals := make([][]model.Value, len(cols))
		for i, c := range cols {
			vals, err := readColumn(partFile(dir, p, c), len(ids))
			if err != nil {
				return nil, nil, err
			}
			colVals[i] = vals
		}
		batches = append(batches, model.NewBatch(ids, colVals))
	}
	return batches, outSchema, nil
}

func partFile(dir string, part, col int) string {
	if col < 0 {
		return filepath.Join(dir, fmt.Sprintf("p%d.ids", part))
	}
	return filepath.Join(dir, fmt.Sprintf("p%d.c%d", part, col))
}

func readIDs(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []int64
	pos := 0
	for pos < len(raw) {
		v, n := uvarint(raw[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt id file %s", path)
		}
		out = append(out, int64(v))
		pos += n
	}
	return out, nil
}

func readColumn(path string, n int) ([]model.Value, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	out := make([]model.Value, 0, n)
	pos := 0
	for pos < len(raw) {
		v, used, err := model.DecodeValue(raw[pos:])
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt column file %s: %w", path, err)
		}
		out = append(out, v)
		pos += used
	}
	if len(out) != n {
		return nil, fmt.Errorf("storage: column file %s has %d values, want %d", path, len(out), n)
	}
	return out, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func uvarint(buf []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, -1
		}
	}
	return 0, 0
}
