package storage

import (
	"fmt"
	"testing"

	"bigdansing/internal/model"
)

func sampleRel(n int) *model.Relation {
	s := model.MustParseSchema("name,zipcode:int,city,salary:float")
	rel := model.NewRelation("tax", s)
	for i := 0; i < n; i++ {
		rel.Append(model.NewTuple(int64(i),
			model.S(fmt.Sprintf("P%d", i)),
			model.I(int64(10000+i%7)),
			model.S(fmt.Sprintf("City%d", i%7)),
			model.F(float64(i)*100),
		))
	}
	return rel
}

func TestUploadReadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rel := sampleRel(50)
	plan, err := st.Upload(rel, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rows != 50 || plan.Partitions != 4 {
		t.Errorf("plan = %+v", plan)
	}
	got, err := st.Read("tax", "", ReadOptions{Partition: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("rows = %d", got.Len())
	}
	byID := map[int64]model.Tuple{}
	for _, tp := range got.Tuples {
		byID[tp.ID] = tp
	}
	for _, want := range rel.Tuples {
		tp, ok := byID[want.ID]
		if !ok {
			t.Fatalf("tuple %d missing", want.ID)
		}
		for c := range want.Cells {
			if !tp.Cell(c).Equal(want.Cell(c)) {
				t.Errorf("tuple %d col %d: %v vs %v", want.ID, c, tp.Cell(c), want.Cell(c))
			}
		}
	}
}

func TestScopePushdownReadsOnlyColumns(t *testing.T) {
	st, _ := Open(t.TempDir())
	rel := sampleRel(20)
	if _, err := st.Upload(rel, "", 2); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read("tax", "", ReadOptions{Columns: []string{"zipcode", "city"}, Partition: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Len() != 2 {
		t.Fatalf("projected schema = %s", got.Schema)
	}
	if got.Schema.Name(0) != "zipcode" || got.Schema.Name(1) != "city" {
		t.Errorf("projected names = %v", got.Schema.Names())
	}
	for _, tp := range got.Tuples {
		if len(tp.Cells) != 2 {
			t.Fatalf("tuple width = %d", len(tp.Cells))
		}
	}
}

func TestBlockPushdownReadsOnePartition(t *testing.T) {
	st, _ := Open(t.TempDir())
	rel := sampleRel(70)
	if _, err := st.Upload(rel, "zipcode", 5); err != nil {
		t.Fatal(err)
	}
	key := model.I(10003)
	got, err := st.Read("tax", "zipcode", ReadOptions{BlockKey: &key, Partition: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple with zipcode 10003 must be present; the partition may
	// contain other keys that hash alike, but never miss the block.
	want := 0
	for _, tp := range rel.Tuples {
		if tp.Cell(1) == model.I(10003) {
			want++
		}
	}
	found := 0
	for _, tp := range got.Tuples {
		if tp.Cell(1) == model.I(10003) {
			found++
		}
	}
	if found != want {
		t.Errorf("block read found %d/%d tuples of the block", found, want)
	}
	if got.Len() >= rel.Len() {
		t.Errorf("block pushdown should read less than the full dataset (%d vs %d)", got.Len(), rel.Len())
	}
}

func TestBlockPushdownRequiresContentPartitioning(t *testing.T) {
	st, _ := Open(t.TempDir())
	rel := sampleRel(10)
	st.Upload(rel, "", 2)
	bk := model.S("x")
	if _, err := st.Read("tax", "", ReadOptions{BlockKey: &bk, Partition: -1}); err == nil {
		t.Error("block pushdown on round-robin replica should fail")
	}
}

func TestHeterogeneousReplicas(t *testing.T) {
	st, _ := Open(t.TempDir())
	rel := sampleRel(30)
	if _, err := st.Upload(rel, "zipcode", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Upload(rel, "city", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Upload(rel, "", 3); err != nil {
		t.Fatal(err)
	}
	reps, err := st.Replicas("tax")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("replicas = %v", reps)
	}
	// All replicas carry the same data.
	for _, attr := range []string{"zipcode", "city", ""} {
		got, err := st.Read("tax", attr, ReadOptions{Partition: -1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 30 {
			t.Errorf("replica %q rows = %d", attr, got.Len())
		}
	}
}

func TestPartitionedReadByIndex(t *testing.T) {
	st, _ := Open(t.TempDir())
	rel := sampleRel(40)
	st.Upload(rel, "zipcode", 4)
	total := 0
	seen := map[int64]bool{}
	for p := 0; p < 4; p++ {
		got, err := st.Read("tax", "zipcode", ReadOptions{Partition: p})
		if err != nil {
			t.Fatal(err)
		}
		total += got.Len()
		for _, tp := range got.Tuples {
			if seen[tp.ID] {
				t.Fatalf("tuple %d in two partitions", tp.ID)
			}
			seen[tp.ID] = true
		}
	}
	if total != 40 {
		t.Errorf("partition union = %d rows", total)
	}
	if _, err := st.Read("tax", "zipcode", ReadOptions{Partition: 9}); err == nil {
		t.Error("out of range partition should fail")
	}
}

func TestContentPartitioningCoLocatesBlocks(t *testing.T) {
	// All tuples sharing a zipcode land in the same partition: the Block
	// operator pushed down to the storage layer.
	st, _ := Open(t.TempDir())
	rel := sampleRel(100)
	st.Upload(rel, "zipcode", 4)
	partOf := map[string]int{}
	for p := 0; p < 4; p++ {
		got, err := st.Read("tax", "zipcode", ReadOptions{Partition: p})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range got.Tuples {
			key := tp.Cell(1).Key()
			if prev, ok := partOf[key]; ok && prev != p {
				t.Fatalf("zipcode %s split across partitions %d and %d", key, prev, p)
			}
			partOf[key] = p
		}
	}
}

func TestDatasetsAndDeletion(t *testing.T) {
	st, _ := Open(t.TempDir())
	a := sampleRel(10)
	a.Name = "alpha"
	b := sampleRel(10)
	b.Name = "beta"
	st.Upload(a, "", 2)
	st.Upload(a, "zipcode", 2)
	st.Upload(b, "", 2)

	names, err := st.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("datasets = %v", names)
	}

	if err := st.DeleteReplica("alpha", "zipcode"); err != nil {
		t.Fatal(err)
	}
	reps, _ := st.Replicas("alpha")
	if len(reps) != 1 || reps[0] != "" {
		t.Errorf("alpha replicas after delete = %v", reps)
	}
	if err := st.DeleteReplica("alpha", ""); err != nil {
		t.Fatal(err)
	}
	names, _ = st.Datasets()
	if len(names) != 1 || names[0] != "beta" {
		t.Errorf("datasets after deleting alpha's last replica = %v", names)
	}

	if err := st.DeleteDataset("beta"); err != nil {
		t.Fatal(err)
	}
	names, _ = st.Datasets()
	if len(names) != 0 {
		t.Errorf("datasets after DeleteDataset = %v", names)
	}

	if err := st.DeleteReplica("ghost", ""); err == nil {
		t.Error("deleting a missing replica should fail")
	}
	if err := st.DeleteDataset("ghost"); err == nil {
		t.Error("deleting a missing dataset should fail")
	}
}

func TestUnknownDatasetAndColumn(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, err := st.Read("ghost", "", ReadOptions{Partition: -1}); err == nil {
		t.Error("unknown dataset should fail")
	}
	rel := sampleRel(5)
	st.Upload(rel, "", 1)
	if _, err := st.Read("tax", "", ReadOptions{Columns: []string{"ghost"}, Partition: -1}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := st.Upload(rel, "ghost", 2); err == nil {
		t.Error("unknown partition attribute should fail")
	}
}
