// Chrome trace-event exporter: writes the span tree in the JSON format
// consumed by Perfetto (ui.perfetto.dev) and chrome://tracing. Driver-side
// spans (stages, pipelines, plan, repair phases) land on track 0; each
// engine worker gets its own track so the per-worker task timeline reads
// like the Spark UI's executor view.
package trace

import (
	"encoding/json"
	"io"
	"strconv"

	"bigdansing/internal/engine"
)

// chromeEvent is one entry of the traceEvents array. Complete spans use
// ph "X" with ts/dur in microseconds; metadata rows (process and thread
// names) use ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// driverTid is the track for driver-side spans; worker w maps to track
// 1+w so worker 0 is never confused with the driver.
const driverTid = 0

func spanTid(s *Span) int {
	if s.kind == engine.SpanTask {
		if w, ok := s.AttrValue(engine.AttrWorker); ok {
			return 1 + int(w)
		}
	}
	return driverTid
}

// WriteChromeTrace writes the tracer's span tree as Chrome trace-event
// JSON. Call it after Finish.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()

	maxWorker := -1
	for _, s := range spans {
		if s.kind == engine.SpanTask {
			if wk, ok := s.AttrValue(engine.AttrWorker); ok && int(wk) > maxWorker {
				maxWorker = int(wk)
			}
		}
	}

	events := make([]chromeEvent, 0, len(spans)+maxWorker+3)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: driverTid,
		Args: map[string]any{"name": "bigdansing"},
	})
	events = append(events, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: driverTid,
		Args: map[string]any{"name": "driver"},
	})
	for wk := 0; wk <= maxWorker; wk++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: 1 + wk,
			Args: map[string]any{"name": "worker " + strconv.Itoa(wk)},
		})
	}

	for _, s := range spans {
		args := make(map[string]any, 4)
		args["span_id"] = s.ID()
		args["parent_id"] = s.ParentID()
		for k := engine.Attr(0); k < engine.NumAttrs; k++ {
			if v, ok := s.AttrValue(k); ok {
				args[k.String()] = v
			}
		}
		events = append(events, chromeEvent{
			Name: s.name,
			Cat:  s.kind.String(),
			Ph:   "X",
			Ts:   float64(s.start.Microseconds()),
			Dur:  microseconds(s),
			Pid:  0,
			Tid:  spanTid(s),
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// microseconds rounds a span's duration up to a representable width so
// even sub-microsecond spans stay visible in the viewer.
func microseconds(s *Span) float64 {
	us := float64(s.dur.Microseconds())
	if us < 1 {
		us = float64(s.dur.Nanoseconds()) / 1000
	}
	return us
}
