// EXPLAIN ANALYZE-style renderer: prints the span tree as an annotated
// plan, one line per span, with the attributes that were reported. Task
// spans are not printed individually — they are aggregated into their
// stage's line (tasks=N in=Σ out=Σ) so the tree stays readable and
// deterministic regardless of worker scheduling.
package trace

import (
	"fmt"
	"io"
	"strings"

	"bigdansing/internal/engine"
)

// treeAttrs is the print order of span attributes; durations come last on
// each line. AttrPart and AttrWorker are per-task and never printed.
var treeAttrs = []engine.Attr{
	engine.AttrPipelines, engine.AttrSharedScans,
	engine.AttrPartitions,
	engine.AttrRecordsIn, engine.AttrRecordsOut, engine.AttrRecordsShuffled,
	engine.AttrBytesSpilled, engine.AttrSpillRuns, engine.AttrMergePasses,
	engine.AttrViolations, engine.AttrFixes,
	engine.AttrDetectNanos, engine.AttrGenFixNanos,
	engine.AttrComponents, engine.AttrSplitComponents,
	engine.AttrConflicts, engine.AttrAssignments,
	engine.AttrAlgorithm,
	engine.AttrVariables, engine.AttrFactors,
	engine.AttrExamples, engine.AttrEpochs,
	engine.AttrSamples, engine.AttrAccepted,
}

// WriteTree renders the tracer's span tree. Call it after Finish.
func WriteTree(w io.Writer, t *Tracer) error {
	spans := t.Spans()
	children := make(map[int][]*Span, len(spans))
	byID := make(map[int]*Span, len(spans))
	for _, s := range spans {
		byID[s.ID()] = s
		if s.ParentID() >= 0 {
			children[s.ParentID()] = append(children[s.ParentID()], s)
		}
	}

	var render func(s *Span, prefix string, last bool) error
	render = func(s *Span, prefix string, last bool) error {
		connector, childPrefix := "", ""
		if s.ParentID() >= 0 {
			if last {
				connector, childPrefix = prefix+"`- ", prefix+"   "
			} else {
				connector, childPrefix = prefix+"|- ", prefix+"|  "
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", connector, spanLine(s, children[s.ID()])); err != nil {
			return err
		}
		kids := nonTask(children[s.ID()])
		for i, c := range kids {
			if err := render(c, childPrefix, i == len(kids)-1); err != nil {
				return err
			}
		}
		return nil
	}
	if root, ok := byID[0]; ok {
		if err := render(root, "", true); err != nil {
			return err
		}
	}

	// Footer: the run-wide counters, so per-operator numbers above can be
	// reconciled with the flat Stats totals. Shuffle volume reaches Stats
	// through stage spans, not Count, so fold the stage attributes in the
	// same way Stats does.
	var totals [engine.NumMetrics]int64
	for m := engine.Metric(0); m < engine.NumMetrics; m++ {
		totals[m] = t.CountValue(m)
	}
	for _, s := range spans {
		if s.kind == engine.SpanStage {
			if v, ok := s.AttrValue(engine.AttrRecordsShuffled); ok {
				totals[engine.MetricRecordsShuffled] += v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "totals:"); err != nil {
		return err
	}
	for m := engine.Metric(0); m < engine.NumMetrics; m++ {
		if v := totals[m]; v != 0 {
			if _, err := fmt.Fprintf(w, " %s=%d", m, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func nonTask(spans []*Span) []*Span {
	out := spans[:0:0]
	for _, s := range spans {
		if s.kind != engine.SpanTask {
			out = append(out, s)
		}
	}
	return out
}

// spanLine formats one span: kind, name, attributes, task aggregate (for
// stages), wall time.
func spanLine(s *Span, kids []*Span) string {
	var b strings.Builder
	if s.kind == engine.SpanRun || strings.HasPrefix(s.name, s.kind.String()) {
		// "round 3" already says it is a round; don't print "round round 3".
		b.WriteString(s.name)
	} else {
		fmt.Fprintf(&b, "%s %s", s.kind, s.name)
	}
	for _, k := range treeAttrs {
		if v, ok := s.AttrValue(k); ok {
			fmt.Fprintf(&b, " %s=%d", k, v)
		}
	}
	if s.kind == engine.SpanStage {
		var tasks, in, out int64
		for _, c := range kids {
			if c.kind != engine.SpanTask {
				continue
			}
			tasks++
			if v, ok := c.AttrValue(engine.AttrRecordsIn); ok {
				in += v
			}
			if v, ok := c.AttrValue(engine.AttrRecordsOut); ok {
				out += v
			}
		}
		fmt.Fprintf(&b, " tasks=%d in=%d out=%d", tasks, in, out)
	}
	fmt.Fprintf(&b, " (%v)", s.dur)
	return b.String()
}
