// Package trace is the span-tree implementation of engine.Observer: it
// records every stage, task, plan compilation, detection pipeline and
// repair phase of a run as a timed span with enum-keyed attributes, and
// exports the tree as an EXPLAIN ANALYZE-style annotated plan (WriteTree)
// or Chrome trace-event JSON loadable in Perfetto (WriteChromeTrace).
//
// The tracer is lock-cheap by design: beginning or ending a span takes one
// short critical section on a plain mutex (spans are appended to a slice,
// never indexed by name), attributes are plain stores into a fixed array
// owned by the reporting goroutine, and nothing at all happens per record —
// the engine reports record counts once per task.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"bigdansing/internal/engine"
)

// Span is one recorded region of work. Its fields are written by the
// goroutine that owns the span (Attr/End) and read after Finish, when the
// run's goroutines have been joined, so plain fields suffice.
type Span struct {
	id     int32
	parent int32 // -1 for the root
	name   string
	kind   engine.SpanKind
	start  time.Duration // offset from the tracer's epoch
	dur    time.Duration
	attrs  [engine.NumAttrs]int64
	mask   uint32 // bit i set when attrs[i] was reported
	scoped bool   // on the tracer's scope stack until End
	ended  atomic.Bool

	tr *Tracer
}

// ID returns the span's index in begin order (the root is 0).
func (s *Span) ID() int { return int(s.id) }

// ParentID returns the parent span's ID, or -1 for the root.
func (s *Span) ParentID() int { return int(s.parent) }

// Name returns the operator or phase name the span was begun with.
func (s *Span) Name() string { return s.name }

// Kind returns the span's kind.
func (s *Span) Kind() engine.SpanKind { return s.kind }

// Start returns the span's begin time as an offset from the run epoch.
func (s *Span) Start() time.Duration { return s.start }

// Duration returns the span's wall time (zero until End).
func (s *Span) Duration() time.Duration { return s.dur }

// AttrValue returns one attribute and whether it was reported.
func (s *Span) AttrValue(k engine.Attr) (int64, bool) {
	if k >= engine.NumAttrs {
		return 0, false
	}
	return s.attrs[k], s.mask&(1<<uint(k)) != 0
}

// Attr implements engine.Span.
func (s *Span) Attr(k engine.Attr, v int64) {
	if k >= engine.NumAttrs || s.ended.Load() {
		return
	}
	s.attrs[k] = v
	s.mask |= 1 << uint(k)
}

// End implements engine.Span. It is idempotent: the first call stamps the
// duration and pops the span from the tracer's scope stack; later calls
// (e.g. a deferred End racing a panic path) are no-ops.
func (s *Span) End() {
	if !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.dur = s.tr.since() - s.start
	if s.scoped {
		s.tr.popScope(s)
	}
}

// Tracer records a span tree for one run. It implements engine.Observer;
// install it with engine.Config.Observer or cleanse.WithObserver. Safe for
// concurrent use by the engine's worker goroutines.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []*Span
	scope []*Span // open nil-parent spans, innermost last
	root  *Span

	counts [engine.NumMetrics]atomic.Int64
}

// New starts a tracer with an open root span named "run".
func New() *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.root = &Span{id: 0, parent: -1, name: "run", kind: engine.SpanRun, tr: t}
	t.spans = []*Span{t.root}
	return t
}

func (t *Tracer) since() time.Duration { return time.Since(t.epoch) }

// BeginSpan implements engine.Observer. A nil parent nests the span under
// the tracer's current scope — the innermost open span begun with a nil
// parent (ultimately the root). Such scoped spans must begin and end in
// LIFO order, which holds because the layers that use them (cleansing
// round -> pipeline -> engine stage) execute sequentially on the driver.
// Concurrent spans (stage tasks, parallel repair instances) pass their
// parent explicitly and never touch the scope stack.
func (t *Tracer) BeginSpan(parent engine.Span, name string, kind engine.SpanKind) engine.Span {
	start := t.since()
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{id: int32(len(t.spans)), name: name, kind: kind, start: start, tr: t}
	if p, ok := parent.(*Span); ok && p != nil {
		sp.parent = p.id
	} else {
		sp.parent = t.root.id
		if n := len(t.scope); n > 0 {
			sp.parent = t.scope[n-1].id
		}
		sp.scoped = true
		t.scope = append(t.scope, sp)
	}
	t.spans = append(t.spans, sp)
	return sp
}

// popScope removes sp (and, defensively, anything begun after it that
// leaked) from the scope stack.
func (t *Tracer) popScope(sp *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.scope) - 1; i >= 0; i-- {
		if t.scope[i] == sp {
			t.scope = t.scope[:i]
			return
		}
	}
}

// Count implements engine.Observer. MetricPeakReservedBytes folds with max,
// everything else with sum.
func (t *Tracer) Count(m engine.Metric, v int64) {
	if m >= engine.NumMetrics {
		return
	}
	c := &t.counts[m]
	if m == engine.MetricPeakReservedBytes {
		for {
			cur := c.Load()
			if v <= cur || c.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	c.Add(v)
}

// CountValue returns one folded run-wide counter.
func (t *Tracer) CountValue(m engine.Metric) int64 {
	if m >= engine.NumMetrics {
		return 0
	}
	return t.counts[m].Load()
}

// Finish closes the root span (and, defensively, any span left open by a
// crashed layer) so exporters see a complete tree. Call it once, after the
// traced run's goroutines have been joined.
func (t *Tracer) Finish() {
	t.mu.Lock()
	open := make([]*Span, 0, len(t.scope)+1)
	open = append(open, t.scope...)
	t.mu.Unlock()
	for i := len(open) - 1; i >= 0; i-- {
		open[i].End()
	}
	t.root.End()
}

// Spans returns the recorded spans in begin order (root first). The result
// is a snapshot of the slice; the spans themselves are shared, so callers
// should export only after Finish.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}
