package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"bigdansing/internal/engine"
)

// TestScopedNesting: nil-parent spans nest under the innermost open scoped
// span; explicit parents bypass the stack.
func TestScopedNesting(t *testing.T) {
	tr := New()
	outer := tr.BeginSpan(nil, "round 1", engine.SpanRound)
	inner := tr.BeginSpan(nil, "fd1", engine.SpanPipeline)
	task := tr.BeginSpan(inner, "fd1", engine.SpanTask)
	task.End()
	inner.End()
	sibling := tr.BeginSpan(nil, "repair", engine.SpanRepair)
	sibling.End()
	outer.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byName := map[string]*Span{}
	for _, s := range spans {
		byName[s.Name()] = s
	}
	if got := byName["round 1"].ParentID(); got != 0 {
		t.Errorf("round parent = %d, want 0 (root)", got)
	}
	if got := byName["fd1"]; got.Kind() == engine.SpanPipeline && got.ParentID() != byName["round 1"].ID() {
		t.Errorf("pipeline parent = %d, want round", got.ParentID())
	}
	if got := byName["repair"].ParentID(); got != byName["round 1"].ID() {
		t.Errorf("repair parent = %d, want round (inner ended first)", got)
	}
	for _, s := range spans {
		if s.Duration() < 0 {
			t.Errorf("span %q has negative duration", s.Name())
		}
	}
}

// TestEndIdempotent: duplicate Ends must not corrupt the scope stack or
// the recorded duration.
func TestEndIdempotent(t *testing.T) {
	tr := New()
	sp := tr.BeginSpan(nil, "stage", engine.SpanStage)
	sp.End()
	d := sp.(*Span).Duration()
	sp.End()
	if sp.(*Span).Duration() != d {
		t.Error("second End changed the duration")
	}
	tr.Finish()
}

// TestFinishClosesLeakedSpans: a span left open (crashed layer) is closed
// by Finish so exporters see a complete tree.
func TestFinishClosesLeakedSpans(t *testing.T) {
	tr := New()
	tr.BeginSpan(nil, "leaky", engine.SpanStage) // never ended
	tr.Finish()
	for _, s := range tr.Spans() {
		if !s.ended.Load() {
			t.Errorf("span %q still open after Finish", s.Name())
		}
	}
}

// TestConcurrentTaskSpans: task spans begin/end from worker goroutines;
// the tracer must keep the tree consistent (run with -race).
func TestConcurrentTaskSpans(t *testing.T) {
	tr := New()
	stage := tr.BeginSpan(nil, "stage", engine.SpanStage)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.BeginSpan(stage, "stage", engine.SpanTask)
				sp.Attr(engine.AttrWorker, int64(w))
				sp.Attr(engine.AttrRecordsIn, 1)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	stage.End()
	tr.Finish()
	spans := tr.Spans()
	if len(spans) != 2+8*50 {
		t.Fatalf("got %d spans, want %d", len(spans), 2+8*50)
	}
	for _, s := range spans {
		if s.Kind() == engine.SpanTask && s.ParentID() != stage.(*Span).ID() {
			t.Fatalf("task parented to %d, want stage", s.ParentID())
		}
	}
}

// TestCountFolds: sums for flow metrics, max for the peak.
func TestCountFolds(t *testing.T) {
	tr := New()
	tr.Count(engine.MetricRecordsRead, 10)
	tr.Count(engine.MetricRecordsRead, 5)
	tr.Count(engine.MetricPeakReservedBytes, 100)
	tr.Count(engine.MetricPeakReservedBytes, 40)
	tr.Count(engine.MetricPeakReservedBytes, 70)
	if got := tr.CountValue(engine.MetricRecordsRead); got != 15 {
		t.Errorf("records read = %d, want 15", got)
	}
	if got := tr.CountValue(engine.MetricPeakReservedBytes); got != 100 {
		t.Errorf("peak = %d, want 100 (max fold)", got)
	}
}

// TestChromeExportValidates: the exporter's output must pass our own
// schema validator and contain per-worker thread tracks.
func TestChromeExportValidates(t *testing.T) {
	tr := New()
	stage := tr.BeginSpan(nil, "Map", engine.SpanStage)
	for w := 0; w < 2; w++ {
		sp := tr.BeginSpan(stage, "Map", engine.SpanTask)
		sp.Attr(engine.AttrWorker, int64(w))
		sp.End()
	}
	stage.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	text := buf.String()
	for _, want := range []string{`"worker 0"`, `"worker 1"`, `"driver"`, `"displayTimeUnit":"ms"`} {
		if !strings.Contains(text, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

// TestValidatorRejectsBadTraces: the validator must catch the failure
// modes a broken exporter could produce.
func TestValidatorRejectsBadTraces(t *testing.T) {
	bad := map[string]string{
		"not json":      `{`,
		"no array":      `{"displayTimeUnit":"ms"}`,
		"empty":         `{"traceEvents":[]}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":0,"tid":0}]}`,
		"no name":       `{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"no pid":        `{"traceEvents":[{"name":"x","ph":"X","ts":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"pid":0,"tid":0}]}`,
		"meta no args":  `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0}]}`,
	}
	for name, data := range bad {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", name)
		}
	}
	good := `{"traceEvents":[{"name":"x","ph":"X","ts":1.5,"dur":2,"pid":0,"tid":1}]}`
	if err := ValidateChromeTrace([]byte(good)); err != nil {
		t.Errorf("validator rejected a valid trace: %v", err)
	}
}

// TestWriteTreeAggregatesTasks: the explain tree hides task spans but
// folds their record counts into the stage line.
func TestWriteTreeAggregatesTasks(t *testing.T) {
	tr := New()
	stage := tr.BeginSpan(nil, "Map·Filter", engine.SpanStage)
	stage.Attr(engine.AttrPartitions, 2)
	for p := 0; p < 2; p++ {
		sp := tr.BeginSpan(stage, "Map·Filter", engine.SpanTask)
		sp.Attr(engine.AttrPart, int64(p))
		sp.Attr(engine.AttrRecordsIn, 10)
		sp.Attr(engine.AttrRecordsOut, 7)
		sp.End()
	}
	stage.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "tasks=2 in=20 out=14") {
		t.Errorf("stage line should aggregate tasks:\n%s", text)
	}
	if strings.Count(text, "Map·Filter") != 1 {
		t.Errorf("task spans should not be printed individually:\n%s", text)
	}
}

// TestTracerWithEngine is the integration check: trace a real dataflow
// job and reconcile span numbers against the engine's Stats.
func TestTracerWithEngine(t *testing.T) {
	tr := New()
	ctx := engine.NewWithConfig(engine.Config{Parallelism: 4, Observer: tr})
	data := make([]int, 200)
	for i := range data {
		data[i] = i % 20
	}
	g := engine.GroupByKey(engine.KeyBy(engine.Parallelize(ctx, data, 4), func(v int) int { return v }))
	groups, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 20 {
		t.Fatalf("groups = %d", len(groups))
	}
	tr.Finish()

	snap := ctx.Stats().Snapshot()
	var stages, tasks int64
	var shuffled int64
	for _, s := range tr.Spans() {
		switch s.Kind() {
		case engine.SpanStage:
			stages++
			if v, ok := s.AttrValue(engine.AttrRecordsShuffled); ok {
				shuffled += v
			}
		case engine.SpanTask:
			tasks++
		}
	}
	if stages != snap.Stages || tasks != snap.Tasks {
		t.Errorf("tracer saw stages=%d tasks=%d, Stats %d/%d", stages, tasks, snap.Stages, snap.Tasks)
	}
	if shuffled != snap.RecordsShuffled {
		t.Errorf("tracer stage shuffled sum = %d, Stats = %d", shuffled, snap.RecordsShuffled)
	}
	if got := tr.CountValue(engine.MetricRecordsRead); got != snap.RecordsRead {
		t.Errorf("tracer records read = %d, Stats = %d", got, snap.RecordsRead)
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("engine trace fails validation: %v", err)
	}
}
