// A small Chrome trace-event schema validator, used by the traced-e2e CI
// step (make test-trace) to assert that what the CLI emits is something
// Perfetto will actually load. It checks the JSON-object form of the
// format: a traceEvents array whose entries carry a name, a known phase,
// non-negative timestamps and integer pid/tid.
package trace

import (
	"encoding/json"
	"fmt"
)

type rawEvent struct {
	Name *string         `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type rawTrace struct {
	TraceEvents *[]rawEvent `json:"traceEvents"`
}

// validPhases is the subset of trace-event phases the validator admits:
// complete spans, begin/end pairs, instants, counters and metadata —
// everything an exporter of ours could plausibly emit.
var validPhases = map[string]bool{
	"X": true, "B": true, "E": true, "i": true, "I": true, "C": true, "M": true,
}

// ValidateChromeTrace checks data against the Chrome trace-event format
// and returns the first problem found, or nil if the trace is loadable.
func ValidateChromeTrace(data []byte) error {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	if len(*tr.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents is empty")
	}
	for i, ev := range *tr.TraceEvents {
		if !validPhases[ev.Ph] {
			return fmt.Errorf("trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("trace: event %d (%s) lacks pid/tid", i, *ev.Name)
		}
		switch ev.Ph {
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("trace: event %d (%s) has a missing or negative ts", i, *ev.Name)
			}
			if ev.Dur != nil && *ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s) has a negative dur", i, *ev.Name)
			}
		case "M":
			if len(ev.Args) == 0 {
				return fmt.Errorf("trace: metadata event %d (%s) has no args", i, *ev.Name)
			}
		}
	}
	return nil
}
